"""Brahms-style Byzantine-resilient membership protocol (paper reference [6]).

The paper's closest related work — Bortnikov et al.'s *Brahms* — combines a
gossip-based membership view with a layer of min-wise samplers and feeds a
fraction of the view from that sampler history, which bounds the fraction of
adversarial identifiers an attacker can push into the views.  This module
implements a compact round-based version of that protocol so the paper's
qualitative comparison ("min-wise sampling converges to a uniform but static
sample") can be reproduced against a running system rather than against a
stand-alone :class:`~repro.core.baselines.MinWiseSampler`.

The implementation follows the structure of Brahms:

* every node keeps a **view** of ``view_size`` identifiers and a layer of
  ``sampler_count`` min-wise samplers fed by every identifier the node hears;
* each round a node *pushes* its identifier to some view members and *pulls*
  the views of others;
* the next view is assembled from ``alpha`` / ``beta`` / ``gamma`` fractions
  of (pushed ids, pulled ids, sampler history), which is the attack-limiting
  mechanism: even if the adversary floods pushes, the ``gamma`` share keeps
  re-injecting the (slowly converging, eventually uniform) sampler history.

Malicious nodes deviate by pushing every round to every correct node they
know and by answering pulls with views made only of adversarial identifiers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

from repro.core.baselines import MinWiseSampler
from repro.utils.rng import RandomState, ensure_rng, spawn_children
from repro.utils.validation import check_positive, check_probability


@dataclass
class BrahmsConfig:
    """Parameters of the Brahms membership protocol."""

    #: Size of every node's membership view (l1 in the Brahms paper).
    view_size: int = 16
    #: Number of min-wise samplers per node (l2 in the Brahms paper).
    sampler_count: int = 16
    #: Fraction of the next view taken from received pushes.
    alpha: float = 0.45
    #: Fraction of the next view taken from pulled views.
    beta: float = 0.45
    #: Fraction of the next view taken from the sampler history.
    gamma: float = 0.1
    #: Number of push messages a correct node sends per round.
    pushes_per_round: int = 4
    #: Number of pull requests a correct node sends per round.
    pulls_per_round: int = 4

    def __post_init__(self) -> None:
        check_positive("view_size", self.view_size)
        check_positive("sampler_count", self.sampler_count)
        check_positive("pushes_per_round", self.pushes_per_round)
        check_positive("pulls_per_round", self.pulls_per_round)
        for name in ("alpha", "beta", "gamma"):
            check_probability(name, getattr(self, name), allow_zero=True,
                              allow_one=True)
        total = self.alpha + self.beta + self.gamma
        if abs(total - 1.0) > 1e-9:
            raise ValueError(
                f"alpha + beta + gamma must equal 1, got {total}"
            )


class BrahmsNode:
    """One correct node running the Brahms membership protocol."""

    is_malicious = False

    def __init__(self, identifier: int, config: BrahmsConfig, *,
                 random_state: RandomState = None) -> None:
        self.identifier = int(identifier)
        self.config = config
        self._rng = ensure_rng(random_state)
        self.view: List[int] = []
        self.sampler = MinWiseSampler(config.sampler_count,
                                      random_state=self._rng)
        self._pending_pushes: List[int] = []

    # -- message handling -------------------------------------------------
    def bootstrap(self, identifiers: Sequence[int]) -> None:
        """Initialise the view with known identifiers (excluding self)."""
        candidates = [int(i) for i in identifiers if int(i) != self.identifier]
        self._rng.shuffle(candidates)
        self.view = candidates[: self.config.view_size]
        for identifier in self.view:
            self.sampler.process(identifier)

    def receive_push(self, identifier: int) -> None:
        """Record a pushed identifier (processed at the end of the round)."""
        identifier = int(identifier)
        self._pending_pushes.append(identifier)
        self.sampler.process(identifier)

    def answer_pull(self) -> List[int]:
        """Return the node's current view (correct nodes answer honestly)."""
        return list(self.view)

    # -- round update -----------------------------------------------------
    def _sample_slice(self, source: List[int], count: int) -> List[int]:
        unique = [identifier for identifier in dict.fromkeys(source)
                  if identifier != self.identifier]
        if not unique or count <= 0:
            return []
        chosen = self._rng.choice(len(unique), size=min(count, len(unique)),
                                  replace=False)
        return [unique[int(index)] for index in chosen]

    def update_view(self, pulled: List[int]) -> None:
        """Assemble the next view from pushes, pulls and the sampler history."""
        for identifier in pulled:
            self.sampler.process(identifier)
        config = self.config
        push_quota = int(round(config.alpha * config.view_size))
        pull_quota = int(round(config.beta * config.view_size))
        history_quota = config.view_size - push_quota - pull_quota

        next_view: List[int] = []
        next_view.extend(self._sample_slice(self._pending_pushes, push_quota))
        next_view.extend(self._sample_slice(pulled, pull_quota))
        history: List[int] = [identifier for identifier
                              in self.sampler.memory_view
                              if identifier != self.identifier]
        next_view.extend(self._sample_slice(history, history_quota))
        # Top up from the previous view if any quota could not be filled.
        if len(next_view) < config.view_size:
            next_view.extend(self._sample_slice(
                self.view, config.view_size - len(next_view)))
        if next_view:
            self.view = list(dict.fromkeys(next_view))[: config.view_size]
        self._pending_pushes = []

    def malicious_fraction_of_view(self, malicious: Set[int]) -> float:
        """Return the fraction of the current view controlled by the adversary."""
        if not self.view:
            return 0.0
        hits = sum(1 for identifier in self.view if identifier in malicious)
        return hits / len(self.view)


class BrahmsSimulation:
    """Round-based simulation of Brahms under a push-flood attack.

    Parameters
    ----------
    num_correct:
        Number of correct nodes.
    num_malicious:
        Number of adversarial identifiers; the adversary pushes each of them
        to every correct node every round and answers every pull with a view
        made only of adversarial identifiers (the strongest view-poisoning
        behaviour Brahms is designed to bound).
    config:
        Protocol parameters.
    random_state:
        Master seed.
    """

    def __init__(self, num_correct: int, num_malicious: int = 0, *,
                 config: Optional[BrahmsConfig] = None,
                 random_state: RandomState = None) -> None:
        check_positive("num_correct", num_correct)
        if num_malicious < 0:
            raise ValueError("num_malicious must be non-negative")
        self.config = config or BrahmsConfig()
        self._rng = ensure_rng(random_state)
        children = spawn_children(self._rng, num_correct)
        self.correct_ids = list(range(num_correct))
        self.malicious_ids = list(range(num_correct,
                                        num_correct + num_malicious))
        self.nodes: Dict[int, BrahmsNode] = {
            identifier: BrahmsNode(identifier, self.config,
                                   random_state=children[index])
            for index, identifier in enumerate(self.correct_ids)
        }
        everyone = self.correct_ids + self.malicious_ids
        for node in self.nodes.values():
            node.bootstrap(everyone)
        self.rounds_executed = 0

    # -- adversary behaviour ------------------------------------------------
    def _adversarial_pull_answer(self) -> List[int]:
        if not self.malicious_ids:
            return []
        size = min(self.config.view_size, len(self.malicious_ids))
        chosen = self._rng.choice(len(self.malicious_ids), size=size,
                                  replace=False)
        return [self.malicious_ids[int(index)] for index in chosen]

    # -- rounds ---------------------------------------------------------------
    def run_round(self) -> None:
        """Execute one synchronous Brahms round."""
        config = self.config
        # 1. Correct pushes.
        for node in self.nodes.values():
            targets = node._sample_slice(node.view, config.pushes_per_round)
            for target in targets:
                if target in self.nodes:
                    self.nodes[target].receive_push(node.identifier)
        # 2. Adversarial push flood: every malicious identifier is pushed to
        #    every correct node every round.
        for node in self.nodes.values():
            for identifier in self.malicious_ids:
                node.receive_push(identifier)
        # 3. Pulls and view update.
        for node in self.nodes.values():
            pulled: List[int] = []
            partners = node._sample_slice(node.view, config.pulls_per_round)
            for partner in partners:
                if partner in self.nodes:
                    pulled.extend(self.nodes[partner].answer_pull())
                elif partner in set(self.malicious_ids):
                    pulled.extend(self._adversarial_pull_answer())
            node.update_view(pulled)
        self.rounds_executed += 1

    def run(self, rounds: int) -> "BrahmsSimulation":
        """Execute ``rounds`` protocol rounds."""
        check_positive("rounds", rounds)
        for _ in range(rounds):
            self.run_round()
        return self

    # -- observation ----------------------------------------------------------
    def mean_view_poisoning(self) -> float:
        """Mean fraction of adversarial identifiers in correct nodes' views."""
        malicious = set(self.malicious_ids)
        fractions = [node.malicious_fraction_of_view(malicious)
                     for node in self.nodes.values()]
        return sum(fractions) / len(fractions) if fractions else 0.0

    def mean_sampler_poisoning(self) -> float:
        """Mean fraction of adversarial identifiers in the sampler layers."""
        malicious = set(self.malicious_ids)
        fractions = []
        for node in self.nodes.values():
            memory = node.sampler.memory_view
            if not memory:
                continue
            fractions.append(sum(1 for identifier in memory
                                 if identifier in malicious) / len(memory))
        return sum(fractions) / len(fractions) if fractions else 0.0
