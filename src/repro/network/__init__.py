"""Network substrate: nodes, overlays, gossip and random-walk dissemination.

The paper's input streams are produced by the continuous propagation of node
identifiers through gossip or random walks over a weakly connected overlay of
correct nodes infiltrated by adversary-controlled nodes.  This subpackage
simulates that substrate end to end:

* :mod:`repro.network.node` — correct nodes (running the sampling service)
  and malicious nodes (advertising adversary-chosen identifiers);
* :mod:`repro.network.overlay` — overlay graphs and connectivity checks;
* :mod:`repro.network.gossip` — round-based push gossip dissemination;
* :mod:`repro.network.random_walk` — random-walk dissemination;
* :mod:`repro.network.simulator` — the end-to-end :class:`SystemSimulation`.
"""

from repro.network.brahms import BrahmsConfig, BrahmsNode, BrahmsSimulation
from repro.network.gossip import GossipConfig, GossipSimulation
from repro.network.node import CorrectNode, MaliciousNode, Node, NodeConfig
from repro.network.overlay import (
    OverlayGraph,
    erdos_renyi,
    random_regular,
    ring_with_shortcuts,
)
from repro.network.random_walk import RandomWalkConfig, RandomWalkSimulation
from repro.network.simulator import (
    DisseminationProtocol,
    NodeReport,
    SystemConfig,
    SystemReport,
    SystemSimulation,
)

__all__ = [
    "Node",
    "CorrectNode",
    "MaliciousNode",
    "NodeConfig",
    "OverlayGraph",
    "ring_with_shortcuts",
    "erdos_renyi",
    "random_regular",
    "GossipConfig",
    "GossipSimulation",
    "BrahmsConfig",
    "BrahmsNode",
    "BrahmsSimulation",
    "RandomWalkConfig",
    "RandomWalkSimulation",
    "SystemConfig",
    "SystemSimulation",
    "SystemReport",
    "NodeReport",
    "DisseminationProtocol",
]
