"""Setup shim for environments without the ``wheel`` package.

The project is fully described by ``pyproject.toml``; this file only exists so
that ``pip install -e . --no-use-pep517`` (the legacy editable path) works in
offline environments where pip cannot build a wheel.
"""

from setuptools import setup

setup()
