"""Tests for repro.analysis.markov (Section IV Markov-chain analysis)."""

import math

import numpy as np
import pytest

from repro.analysis.markov import OmniscientChainModel, uniform_chain_model


class TestChainConstruction:
    def test_state_space_size(self):
        model = uniform_chain_model(5, 2)
        assert model.num_states == math.comb(5, 2)

    def test_transition_matrix_is_stochastic(self):
        model = uniform_chain_model(5, 2, bias={0: 0.4, 1: 0.3, 2: 0.1,
                                                3: 0.1, 4: 0.1})
        matrix = model.transition_matrix()
        assert np.allclose(matrix.sum(axis=1), 1.0)
        assert np.all(matrix >= -1e-15)

    def test_transitions_only_between_adjacent_subsets(self):
        model = uniform_chain_model(5, 2)
        matrix = model.transition_matrix()
        for i, source in enumerate(model.states):
            for j, destination in enumerate(model.states):
                if i == j:
                    continue
                if len(source - destination) != 1:
                    assert matrix[i, j] == 0.0

    def test_transition_probability_method_matches_matrix(self):
        model = uniform_chain_model(4, 2, bias={0: 0.5, 1: 0.2, 2: 0.2, 3: 0.1})
        matrix = model.transition_matrix()
        for i, source in enumerate(model.states):
            for j, destination in enumerate(model.states):
                assert model.transition_probability(source, destination) == \
                    pytest.approx(matrix[i, j], abs=1e-12)

    def test_rejects_memory_not_smaller_than_population(self):
        with pytest.raises(ValueError):
            uniform_chain_model(3, 3)

    def test_rejects_non_positive_probabilities(self):
        with pytest.raises(ValueError):
            OmniscientChainModel({0: 0.5, 1: 0.0, 2: 0.5}, 1)

    def test_rejects_non_positive_removal_weights(self):
        with pytest.raises(ValueError):
            OmniscientChainModel({0: 0.5, 1: 0.3, 2: 0.2}, 1,
                                 removal_weights={0: 0.0, 1: 1.0, 2: 1.0})


class TestStationaryDistribution:
    def test_theorem3_matches_power_iteration(self):
        model = uniform_chain_model(6, 2, bias={0: 0.4, 1: 0.2, 2: 0.1,
                                                3: 0.1, 4: 0.1, 5: 0.1})
        theoretical = model.theoretical_stationary_distribution()
        numerical = model.numerical_stationary_distribution()
        assert np.allclose(theoretical, numerical, atol=1e-8)

    def test_reversibility(self):
        model = uniform_chain_model(5, 2, bias={0: 0.5, 1: 0.2, 2: 0.1,
                                                3: 0.1, 4: 0.1})
        assert model.is_reversible()

    def test_paper_choice_gives_uniform_stationary_distribution(self):
        # Theorem 4: with a_j = min(p)/p_j and r_j = 1/n, pi is uniform over
        # all C(n, c) states.
        model = uniform_chain_model(6, 3, bias={0: 0.3, 1: 0.25, 2: 0.2,
                                                3: 0.1, 4: 0.1, 5: 0.05})
        pi = model.theoretical_stationary_distribution()
        assert np.allclose(pi, 1.0 / model.num_states, atol=1e-12)

    def test_membership_probabilities_are_c_over_n(self):
        # Theorem 4: gamma_l = c / n for every identifier, whatever the bias.
        bias = {0: 0.6, 1: 0.2, 2: 0.1, 3: 0.05, 4: 0.05}
        model = uniform_chain_model(5, 2, bias=bias)
        gammas = model.membership_probabilities()
        for gamma in gammas.values():
            assert gamma == pytest.approx(2 / 5, abs=1e-10)

    def test_output_probabilities_are_uniform(self):
        # Uniformity property: P{output = j} = 1/n for every identifier.
        bias = {0: 0.7, 1: 0.1, 2: 0.1, 3: 0.05, 4: 0.05}
        model = uniform_chain_model(5, 2, bias=bias)
        outputs = model.output_probabilities()
        for probability in outputs.values():
            assert probability == pytest.approx(1 / 5, abs=1e-10)

    def test_membership_sums_to_memory_size(self):
        model = uniform_chain_model(6, 3)
        gammas = model.membership_probabilities()
        assert sum(gammas.values()) == pytest.approx(3.0, abs=1e-9)

    def test_non_paper_parameters_break_uniformity(self):
        # With a_j = 1 for all j (no insertion damping), a heavily biased
        # stream yields a non-uniform stationary membership — the defence
        # really comes from the paper's choice of (a, r).
        bias = {0: 0.7, 1: 0.1, 2: 0.1, 3: 0.05, 4: 0.05}
        model = OmniscientChainModel(bias, 2,
                                     insertion_probabilities={i: 1.0 for i in bias})
        gammas = model.membership_probabilities()
        values = np.array(sorted(gammas.values()))
        assert values[-1] - values[0] > 0.1


class TestTransientBehaviour:
    def test_distribution_after_zero_steps_is_initial(self):
        model = uniform_chain_model(5, 2)
        distribution = model.distribution_after(0)
        assert distribution.max() == pytest.approx(1.0)

    def test_convergence_to_stationary(self):
        model = uniform_chain_model(5, 2, bias={0: 0.3, 1: 0.25, 2: 0.2,
                                                3: 0.15, 4: 0.1})
        early = model.total_variation_to_stationary(1)
        late = model.total_variation_to_stationary(200)
        assert late < early
        assert late < 1e-3

    def test_custom_initial_state(self):
        model = uniform_chain_model(5, 2)
        distribution = model.distribution_after(0, initial_state=[3, 4])
        index = model.states.index(frozenset({3, 4}))
        assert distribution[index] == pytest.approx(1.0)

    def test_invalid_initial_state_rejected(self):
        model = uniform_chain_model(5, 2)
        with pytest.raises(ValueError):
            model.distribution_after(1, initial_state=[0, 1, 2])

    def test_negative_steps_rejected(self):
        model = uniform_chain_model(4, 2)
        with pytest.raises(ValueError):
            model.distribution_after(-1)


class TestAgreementWithSimulation:
    def test_stationary_membership_matches_algorithm1_simulation(self):
        # Drive the actual OmniscientStrategy with a biased stream and check
        # that each identifier occupies the memory about c/n of the time.
        from repro.core.omniscient import OmniscientStrategy
        from repro.streams.oracle import StreamOracle

        population, memory_size = 6, 2
        bias = {0: 0.5, 1: 0.2, 2: 0.1, 3: 0.1, 4: 0.05, 5: 0.05}
        oracle = StreamOracle(bias)
        strategy = OmniscientStrategy(oracle, memory_size, random_state=0)
        rng = np.random.default_rng(0)
        identifiers = list(bias)
        probabilities = np.array([bias[i] for i in identifiers])
        occupancy = np.zeros(population)
        warmup, steps = 2_000, 40_000
        for step in range(steps):
            draw = identifiers[int(rng.choice(population, p=probabilities))]
            strategy.process(draw)
            if step >= warmup:
                for identifier in strategy.memory:
                    occupancy[identifier] += 1
        shares = occupancy / occupancy.sum() * memory_size
        assert np.allclose(shares, memory_size / population, atol=0.05)
