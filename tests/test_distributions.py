"""Tests for repro.metrics.distributions."""

import numpy as np
import pytest

from repro.metrics.distributions import FrequencyDistribution
from repro.streams import IdentifierStream, uniform_stream


class TestFrequencyDistribution:
    def test_normalisation(self):
        dist = FrequencyDistribution({1: 2.0, 2: 2.0})
        assert dist.probability(1) == pytest.approx(0.5)
        assert dist.probabilities.sum() == pytest.approx(1.0)

    def test_support_with_zero_mass(self):
        dist = FrequencyDistribution({1: 1.0}, support=[1, 2, 3])
        assert dist.support == [1, 2, 3]
        assert dist.probability(2) == 0.0
        assert dist.effective_support_size() == 1

    def test_rejects_mass_outside_support(self):
        with pytest.raises(ValueError):
            FrequencyDistribution({5: 1.0}, support=[1, 2])

    def test_rejects_negative_mass(self):
        with pytest.raises(ValueError):
            FrequencyDistribution({1: -0.5, 2: 1.5})

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            FrequencyDistribution({})
        with pytest.raises(ValueError):
            FrequencyDistribution({1: 0.0})

    def test_from_counts(self):
        dist = FrequencyDistribution.from_counts({1: 3, 2: 1})
        assert dist.probability(1) == pytest.approx(0.75)

    def test_from_stream_uses_universe_as_support(self):
        stream = IdentifierStream(identifiers=[1, 1, 2], universe=[1, 2, 3])
        dist = FrequencyDistribution.from_stream(stream)
        assert dist.support == [1, 2, 3]
        assert dist.probability(3) == 0.0

    def test_uniform_constructor(self):
        dist = FrequencyDistribution.uniform([1, 2, 3, 4])
        assert dist.probability(2) == pytest.approx(0.25)
        assert dist.max_probability() == pytest.approx(0.25)

    def test_uniform_rejects_empty_support(self):
        with pytest.raises(ValueError):
            FrequencyDistribution.uniform([])

    def test_contains_and_len(self):
        dist = FrequencyDistribution({1: 1.0, 2: 1.0})
        assert 1 in dist
        assert 3 not in dist
        assert len(dist) == 2

    def test_as_dict_round_trip(self):
        dist = FrequencyDistribution({1: 0.2, 2: 0.8})
        rebuilt = FrequencyDistribution(dist.as_dict())
        assert np.allclose(rebuilt.probabilities, dist.probabilities)

    def test_aligned_with(self):
        first = FrequencyDistribution({1: 1.0, 2: 1.0})
        second = FrequencyDistribution({2: 1.0, 3: 1.0})
        mine, theirs = first.aligned_with(second)
        assert mine.shape == theirs.shape == (3,)
        assert mine.sum() == pytest.approx(1.0)
        assert theirs.sum() == pytest.approx(1.0)

    def test_probability_outside_support_is_zero(self):
        dist = FrequencyDistribution({1: 1.0})
        assert dist.probability(42) == 0.0
