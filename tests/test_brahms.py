"""Tests for repro.network.brahms (Brahms-style membership protocol)."""

import pytest

from repro.network.brahms import BrahmsConfig, BrahmsNode, BrahmsSimulation


class TestBrahmsConfig:
    def test_defaults_sum_to_one(self):
        config = BrahmsConfig()
        assert config.alpha + config.beta + config.gamma == pytest.approx(1.0)

    def test_rejects_fractions_not_summing_to_one(self):
        with pytest.raises(ValueError):
            BrahmsConfig(alpha=0.5, beta=0.5, gamma=0.5)

    def test_rejects_invalid_sizes(self):
        with pytest.raises(ValueError):
            BrahmsConfig(view_size=0)
        with pytest.raises(ValueError):
            BrahmsConfig(pushes_per_round=0)


class TestBrahmsNode:
    def test_bootstrap_excludes_self_and_respects_view_size(self):
        node = BrahmsNode(0, BrahmsConfig(view_size=5), random_state=0)
        node.bootstrap(range(20))
        assert len(node.view) == 5
        assert 0 not in node.view

    def test_receive_push_feeds_sampler(self):
        node = BrahmsNode(0, BrahmsConfig(view_size=4, sampler_count=4),
                          random_state=1)
        node.receive_push(7)
        assert 7 in node.sampler.memory

    def test_answer_pull_returns_copy(self):
        node = BrahmsNode(0, BrahmsConfig(view_size=4), random_state=2)
        node.bootstrap(range(10))
        answer = node.answer_pull()
        answer.append(999)
        assert 999 not in node.view

    def test_update_view_mixes_sources_and_bounds_size(self):
        config = BrahmsConfig(view_size=6)
        node = BrahmsNode(0, config, random_state=3)
        node.bootstrap(range(12))
        for identifier in (20, 21, 22):
            node.receive_push(identifier)
        node.update_view(pulled=[30, 31, 32, 33])
        assert 0 < len(node.view) <= 6
        assert len(set(node.view)) == len(node.view)
        assert 0 not in node.view

    def test_malicious_fraction_of_view(self):
        node = BrahmsNode(0, BrahmsConfig(view_size=4), random_state=4)
        node.view = [1, 2, 100, 101]
        assert node.malicious_fraction_of_view({100, 101}) == pytest.approx(0.5)
        node.view = []
        assert node.malicious_fraction_of_view({100}) == 0.0


class TestBrahmsSimulation:
    def test_construction_and_bootstrap(self):
        simulation = BrahmsSimulation(20, 5, random_state=0)
        assert len(simulation.nodes) == 20
        for node in simulation.nodes.values():
            assert node.view

    def test_rounds_execute(self):
        simulation = BrahmsSimulation(15, 3, random_state=1)
        simulation.run(5)
        assert simulation.rounds_executed == 5

    def test_no_adversary_no_poisoning(self):
        simulation = BrahmsSimulation(15, 0, random_state=2)
        simulation.run(5)
        assert simulation.mean_view_poisoning() == 0.0
        assert simulation.mean_sampler_poisoning() == 0.0

    def test_push_flood_poisons_views_but_is_bounded(self):
        # The adversary pushes every identifier to every node every round;
        # the gamma (sampler-history) share keeps the views from being fully
        # poisoned, which is Brahms's design goal.
        config = BrahmsConfig(view_size=16, sampler_count=16,
                              alpha=0.45, beta=0.45, gamma=0.1)
        simulation = BrahmsSimulation(25, 5, config=config, random_state=3)
        simulation.run(15)
        poisoning = simulation.mean_view_poisoning()
        assert 0.0 < poisoning < 1.0

    def test_sampler_history_less_poisoned_than_views(self):
        # Min-wise samplers are insensitive to repetition, so under a push
        # flood the sampler layer contains a smaller adversarial fraction
        # than the raw views — the property the node sampling service
        # generalises.
        config = BrahmsConfig(view_size=16, sampler_count=16)
        simulation = BrahmsSimulation(25, 5, config=config, random_state=4)
        simulation.run(15)
        assert simulation.mean_sampler_poisoning() <= \
            simulation.mean_view_poisoning() + 0.05

    def test_gamma_share_limits_poisoning(self):
        # Removing the sampler-history share (gamma = 0) leaves the views
        # strictly more poisoned than with Brahms's recommended mix.
        flood = dict(num_correct=25, num_malicious=6)
        with_history = BrahmsSimulation(
            config=BrahmsConfig(alpha=0.4, beta=0.4, gamma=0.2),
            random_state=5, **flood).run(15)
        without_history = BrahmsSimulation(
            config=BrahmsConfig(alpha=0.5, beta=0.5, gamma=0.0),
            random_state=5, **flood).run(15)
        assert with_history.mean_view_poisoning() <= \
            without_history.mean_view_poisoning() + 0.05

    def test_validation(self):
        with pytest.raises(ValueError):
            BrahmsSimulation(0, 0)
        with pytest.raises(ValueError):
            BrahmsSimulation(5, -1)
        with pytest.raises(ValueError):
            BrahmsSimulation(5, 1).run(0)
