"""Tests for repro.telemetry (registry, runtime switch, instrumentation).

The load-bearing guarantee under test: telemetry records observations only
and never draws randomness, so enabling it cannot perturb the engine's
coin streams — the bit-identity tests run every execution backend with
telemetry *on* against a telemetry-off serial reference.  The harvest tests
assert that worker-side registries (process/socket backends) ship their
snapshots back over the command channel and merge exactly once (no
fork-inherited double counting).
"""

import logging
import threading

import numpy as np
import pytest

from repro import telemetry
from repro.engine import ShardedSamplingService, run_stream
from repro.engine.batch import run_stream_scalar
from repro.core import KnowledgeFreeStrategy
from repro.telemetry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    empty_snapshot,
    merge_snapshots,
)
from repro.telemetry import runtime
from repro.streams import zipf_stream

STREAM = zipf_stream(6_000, 800, alpha=1.3, random_state=31)
IDS = np.asarray(STREAM.identifiers, dtype=np.int64)


def _service(backend, seed=23, shards=4, **kwargs):
    return ShardedSamplingService.knowledge_free(
        shards=shards, memory_size=10, sketch_width=32, sketch_depth=4,
        random_state=seed, backend=backend, **kwargs)


# --------------------------------------------------------------------- #
# Instruments
# --------------------------------------------------------------------- #
class TestInstruments:
    def test_counter_accumulates(self):
        counter = Counter()
        counter.inc()
        counter.inc(5)
        assert counter.value == 6

    def test_gauge_last_write_wins(self):
        gauge = Gauge()
        gauge.set(3)
        gauge.set("serial")
        assert gauge.value == "serial"

    def test_histogram_bucket_placement(self):
        histogram = Histogram((1.0, 2.0, 4.0))
        for value in (0.5, 1.0, 1.5, 3.0, 100.0):
            histogram.observe(value)
        # bucket i counts values <= edges[i]; the last bucket is overflow
        assert histogram.counts == [2, 1, 1, 1]
        assert histogram.count == 5
        assert histogram.min == 0.5
        assert histogram.max == 100.0
        assert histogram.mean == pytest.approx(106.0 / 5)

    def test_histogram_requires_increasing_edges(self):
        with pytest.raises(ValueError):
            Histogram((2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(())


class TestRegistry:
    def test_get_or_create_is_stable(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("g") is registry.gauge("g")
        assert (registry.histogram("h", (1.0, 2.0))
                is registry.histogram("h", (1.0, 2.0)))

    def test_histogram_edge_mismatch_is_an_error(self):
        registry = MetricsRegistry()
        registry.histogram("h", (1.0, 2.0))
        with pytest.raises(ValueError, match="edges"):
            registry.histogram("h", (1.0, 3.0))

    def test_span_times_into_a_histogram(self):
        registry = MetricsRegistry()
        with registry.span("work", (0.5, 1.0)):
            pass
        snapshot = registry.snapshot()
        data = snapshot["histograms"]["work_seconds"]
        assert data["count"] == 1
        assert data["sum"] >= 0.0

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.gauge("g").set(7)
        registry.histogram("h", (1.0,)).observe(0.5)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"c": 2}
        assert snapshot["gauges"] == {"g": 7}
        data = snapshot["histograms"]["h"]
        assert data["edges"] == [1.0]
        assert data["counts"] == [1, 0]
        assert data["count"] == 1

    def test_merge_snapshot_accumulates(self):
        source = MetricsRegistry()
        source.counter("c").inc(3)
        source.gauge("g").set("worker")
        source.histogram("h", (1.0, 2.0)).observe(1.5)
        target = MetricsRegistry()
        target.counter("c").inc(1)
        target.histogram("h", (1.0, 2.0)).observe(0.5)
        target.merge_snapshot(source.snapshot())
        snapshot = target.snapshot()
        assert snapshot["counters"]["c"] == 4
        assert snapshot["gauges"]["g"] == "worker"
        assert snapshot["histograms"]["h"]["count"] == 2
        assert snapshot["histograms"]["h"]["counts"] == [1, 1, 0]

    def test_merge_snapshot_rejects_mismatched_edges(self):
        source = MetricsRegistry()
        source.histogram("h", (1.0,)).observe(0.5)
        target = MetricsRegistry()
        target.histogram("h", (2.0,)).observe(0.5)
        with pytest.raises(ValueError, match="edges"):
            target.merge_snapshot(source.snapshot())

    def test_merge_snapshots_function(self):
        first = MetricsRegistry()
        first.counter("c").inc(1)
        second = MetricsRegistry()
        second.counter("c").inc(2)
        merged = merge_snapshots([first.snapshot(), second.snapshot(),
                                  empty_snapshot()])
        assert merged["counters"]["c"] == 3

    def test_clear(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.clear()
        assert registry.snapshot() == empty_snapshot()


# --------------------------------------------------------------------- #
# Runtime switch
# --------------------------------------------------------------------- #
class TestRuntime:
    def test_disabled_by_default(self):
        assert runtime.active() is None
        assert not runtime.is_enabled()
        assert runtime.snapshot_active() == empty_snapshot()

    def test_enable_disable(self):
        registry = runtime.enable()
        try:
            assert runtime.active() is registry
            # re-enabling keeps the registry so totals accumulate
            assert runtime.enable() is registry
        finally:
            runtime.disable()
        assert runtime.active() is None

    def test_enable_worker_installs_a_fresh_registry(self):
        inherited = runtime.enable()
        inherited.counter("stale").inc(99)
        try:
            fresh = runtime.enable_worker()
            assert fresh is not inherited
            assert runtime.snapshot_active() == empty_snapshot()
        finally:
            runtime.disable()

    def test_enabled_context_restores_previous_state(self):
        outer = MetricsRegistry()
        with telemetry.enabled(outer) as registry:
            assert registry is outer
            with telemetry.enabled() as inner:
                assert runtime.active() is inner
            assert runtime.active() is outer
        assert runtime.active() is None

    def test_switch_is_thread_local(self):
        seen = {}
        with telemetry.enabled():
            thread = threading.Thread(
                target=lambda: seen.update(active=runtime.active()))
            thread.start()
            thread.join()
        assert seen["active"] is None


# --------------------------------------------------------------------- #
# Engine instrumentation
# --------------------------------------------------------------------- #
class TestEngineInstrumentation:
    def _strategy(self):
        return KnowledgeFreeStrategy(10, sketch_width=32, sketch_depth=4,
                                     random_state=5)

    def test_run_stream_records_volume_and_timing(self):
        with telemetry.enabled() as registry:
            result = run_stream(self._strategy(), IDS, batch_size=1024)
            snapshot = registry.snapshot()
        assert snapshot["counters"]["engine.elements"] == IDS.size
        assert snapshot["counters"]["engine.chunks"] == result.batches
        assert snapshot["counters"]["engine.bytes"] == IDS.nbytes
        assert (snapshot["histograms"]["engine.chunk_seconds"]["count"]
                == result.batches)

    def test_run_stream_outputs_identical_with_telemetry(self):
        baseline = run_stream(self._strategy(), IDS, batch_size=1024)
        with telemetry.enabled():
            instrumented = run_stream(self._strategy(), IDS, batch_size=1024)
        assert np.array_equal(baseline.outputs, instrumented.outputs)

    def test_scalar_driver_matches_with_telemetry(self):
        baseline = run_stream_scalar(self._strategy(), IDS[:1500])
        with telemetry.enabled():
            instrumented = run_stream_scalar(self._strategy(), IDS[:1500])
        assert np.array_equal(baseline.outputs, instrumented.outputs)


# --------------------------------------------------------------------- #
# Cross-backend bit-identity with telemetry enabled
# --------------------------------------------------------------------- #
class TestBitIdentityWithTelemetry:
    @pytest.mark.parametrize("backend", ["serial", "process", "socket"])
    def test_backend_bit_identical_to_untraced_serial(self, backend):
        """Telemetry on any backend never shifts outputs, memory or samples."""
        reference = _service("serial")
        expected = reference.on_receive_batch(IDS)
        expected_memory = reference.merged_memory()
        expected_samples = reference.sample_many(50)
        kwargs = {} if backend == "serial" else {"workers": 2}
        with telemetry.enabled() as registry:
            service = _service(backend, **kwargs)
            try:
                outputs = service.on_receive_batch(IDS)
                memory = service.merged_memory()
                samples = service.sample_many(50)
            finally:
                service.close()
            snapshot = registry.snapshot()
        assert np.array_equal(expected, outputs)
        assert expected_memory == memory
        assert expected_samples == samples
        # and the run actually recorded backend metrics while doing so
        assert snapshot["counters"][f"backend.{backend}.dispatches"] >= 1


# --------------------------------------------------------------------- #
# Worker-side registries and the close() harvest
# --------------------------------------------------------------------- #
class TestWorkerHarvest:
    @pytest.mark.parametrize("backend", ["process", "socket"])
    def test_worker_snapshots_merge_exactly_once(self, backend):
        with telemetry.enabled() as registry:
            service = _service(backend, workers=2)
            try:
                service.on_receive_batch(IDS)
            finally:
                service.close()
            snapshot = registry.snapshot()
        counters = snapshot["counters"]
        # every input element was batch-ingested in exactly one worker
        assert counters["worker.batch_elements"] == IDS.size
        assert counters[f"backend.{backend}.dispatch_elements"] == IDS.size
        assert counters[f"backend.{backend}.bytes_sent"] > 0
        assert counters[f"backend.{backend}.bytes_received"] > 0
        assert snapshot["histograms"]["worker.batch_seconds"]["count"] > 0
        assert (snapshot["histograms"]
                [f"backend.{backend}.roundtrip_seconds.batch"]["count"] > 0)
        # final shard loads were recorded as gauges at close time
        gauges = snapshot["gauges"]
        loads = [gauges[f"sharded.shard_load.{shard}"] for shard in range(4)]
        assert sum(loads) == IDS.size
        assert gauges["sharded.backend"] == backend

    @pytest.mark.parametrize("backend", ["process", "socket"])
    def test_drained_worker_registry_merges_exactly_once(self, backend):
        """Scale-down must not lose or double-count worker telemetry.

        A worker retired mid-run has its registry harvested right before
        teardown and parked; the final harvest merges the parked snapshot
        exactly once.  Losing it would undercount ``worker.batch_elements``
        below the stream size; merging it twice would overshoot.
        """
        with telemetry.enabled() as registry:
            service = _service(backend, workers=2)
            try:
                service.on_receive_batch(IDS[:3000])
                new_worker = service.add_worker()
                service.migrate_shard(0, new_worker)
                service.on_receive_batch(IDS[3000:5000])
                # retire an original worker after it ingested real traffic
                service.remove_worker(service.placement.worker_ids[0])
                service.on_receive_batch(IDS[5000:])
            finally:
                service.close()
            snapshot = registry.snapshot()
        counters = snapshot["counters"]
        assert counters["worker.batch_elements"] == IDS.size
        assert counters[f"backend.{backend}.dispatch_elements"] == IDS.size
        assert counters[f"backend.{backend}.workers_added"] == 1
        assert counters[f"backend.{backend}.workers_removed"] == 1
        assert counters[f"backend.{backend}.migrations"] >= 2
        # the post-retirement pool still reports every shard's final load
        gauges = snapshot["gauges"]
        loads = [gauges[f"sharded.shard_load.{shard}"] for shard in range(4)]
        assert sum(loads) == IDS.size
        assert gauges[f"backend.{backend}.workers"] == 2
        assert gauges["sharded.workers"] == 2

    def test_serial_backend_records_in_process(self):
        # serial shards run in-process (no worker protocol), so only the
        # backend.* instrument family applies
        with telemetry.enabled() as registry:
            service = _service("serial")
            service.on_receive_batch(IDS)
            service.close()
            snapshot = registry.snapshot()
        counters = snapshot["counters"]
        assert counters["backend.serial.dispatch_elements"] == IDS.size
        assert "worker.batch_elements" not in counters
        histograms = snapshot["histograms"]
        assert histograms["backend.serial.roundtrip_seconds.batch"]["count"] \
            == counters["backend.serial.dispatches"]

    def test_disabled_run_records_nothing(self):
        registry = MetricsRegistry()
        service = _service("process", workers=2)
        try:
            service.on_receive_batch(IDS[:1000])
        finally:
            service.close()
        assert registry.snapshot() == empty_snapshot()


# --------------------------------------------------------------------- #
# Supervision telemetry and logging (socket backend)
# --------------------------------------------------------------------- #
class TestSupervisionTelemetry:
    def test_kill_mid_run_counts_recovery_and_stays_bit_identical(
            self, caplog):
        reference = _service("serial")
        expected_first = reference.on_receive_batch(IDS[:3000])
        expected_second = reference.on_receive_batch(IDS[3000:])
        with telemetry.enabled() as registry:
            with caplog.at_level(logging.WARNING,
                                 logger="repro.engine.backends.socket"):
                service = _service("socket", workers=2)
                try:
                    first = service.on_receive_batch(IDS[:3000])
                    victim = service.backend._processes[0]
                    victim.kill()
                    victim.join(timeout=5.0)
                    second = service.on_receive_batch(IDS[3000:])
                    assert service.backend.respawns >= 1
                    memory = service.merged_memory()
                finally:
                    service.close()
            snapshot = registry.snapshot()
        assert np.array_equal(expected_first, first)
        assert np.array_equal(expected_second, second)
        assert reference.merged_memory() == memory
        counters = snapshot["counters"]
        assert counters["backend.socket.respawns"] >= 1
        assert counters["backend.socket.respawn_attempts"] >= 1
        assert counters["backend.socket.replayed_commands"] >= 0
        # the supervisor announced the loss and the recovery at WARNING
        messages = [record.message for record in caplog.records
                    if record.name == "repro.engine.backends.socket"]
        assert any("lost" in message and "replay" in message
                   for message in messages)
        assert any("recovered on attempt" in message
                   for message in messages)

    def test_snapshot_counters_advance_past_threshold(self):
        with telemetry.enabled() as registry:
            service = _service("socket", workers=2)
            try:
                backend = service.backend
                backend._snapshot_every = 2
                for start in range(0, 4000, 500):
                    service.on_receive_batch(IDS[start:start + 500])
            finally:
                service.close()
            snapshot = registry.snapshot()
        assert snapshot["counters"]["backend.socket.snapshots"] >= 1
        assert snapshot["gauges"]["backend.socket.snapshot_bytes"] > 0
