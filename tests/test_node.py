"""Tests for repro.network.node."""

import pytest

from repro.network.node import CorrectNode, MaliciousNode, NodeConfig


class TestNodeConfig:
    def test_defaults(self):
        config = NodeConfig()
        assert config.memory_size == 10
        assert config.sketch_width == 10
        assert config.sketch_depth == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            NodeConfig(memory_size=0)
        with pytest.raises(ValueError):
            NodeConfig(sketch_width=-1)


class TestCorrectNode:
    def test_receive_feeds_sampler_and_view(self):
        node = CorrectNode(0, random_state=0)
        node.receive(5)
        node.receive(6)
        assert node.received == [5, 6]
        assert set(node.view) == {5, 6}
        assert node.sample() in {5, 6}

    def test_own_identifier_not_added_to_view(self):
        node = CorrectNode(3, random_state=1)
        node.receive(3)
        assert node.view == []
        assert node.received == [3]

    def test_advertisement_is_own_identifier(self):
        node = CorrectNode(9, random_state=2)
        assert node.advertisement() == 9

    def test_gossip_targets_exclude_self_and_duplicates(self):
        node = CorrectNode(0, random_state=3)
        for identifier in [1, 2, 3, 4, 5, 0, 0]:
            node.receive(identifier)
        targets = node.gossip_targets(3)
        assert len(targets) <= 3
        assert 0 not in targets
        assert len(set(targets)) == len(targets)

    def test_gossip_targets_fall_back_to_view(self):
        node = CorrectNode(0, random_state=4)
        node.view = [7, 8, 9]
        targets = node.gossip_targets(2)
        assert set(targets) <= {7, 8, 9}
        assert targets

    def test_gossip_targets_validation(self):
        node = CorrectNode(0, random_state=5)
        with pytest.raises(ValueError):
            node.gossip_targets(0)

    def test_is_not_malicious(self):
        assert CorrectNode(0).is_malicious is False


class TestMaliciousNode:
    def test_cycles_controlled_identifiers(self):
        node = MaliciousNode(100, [200, 201, 202], random_state=0)
        advertised = [node.advertisement() for _ in range(6)]
        assert advertised == [200, 201, 202, 200, 201, 202]

    def test_requires_controlled_identifiers(self):
        with pytest.raises(ValueError):
            MaliciousNode(100, [])

    def test_receive_only_observes(self):
        node = MaliciousNode(100, [200], random_state=1)
        node.receive(5)
        assert node.view == [5]

    def test_gossip_targets_from_view(self):
        node = MaliciousNode(100, [200], random_state=2)
        for identifier in [1, 2, 3, 1, 2]:
            node.receive(identifier)
        targets = node.gossip_targets(2)
        assert set(targets) <= {1, 2, 3}
        assert len(targets) == 2

    def test_gossip_targets_empty_view(self):
        node = MaliciousNode(100, [200], random_state=3)
        assert node.gossip_targets(2) == []

    def test_is_malicious(self):
        assert MaliciousNode(1, [2]).is_malicious is True
