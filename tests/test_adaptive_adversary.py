"""Tests for the incremental stream plane and adaptive adversaries."""

import json

import numpy as np
import pytest

from repro import telemetry
from repro.adversary import (
    AdaptiveAdversary,
    AttackBudget,
    BudgetLedger,
    BurstSybilAttack,
    EclipseAttack,
    MemoryFloodAttack,
    SamplerView,
)
from repro.core.knowledge_free import KnowledgeFreeStrategy
from repro.engine.batch import run_stream
from repro.scenarios import (
    AdaptiveAdversarySpec,
    ScenarioError,
    ScenarioRunner,
    ScenarioSpec,
    run_scenario,
)
from repro.streams import MaterializedStreamSource, zipf_stream


def make_strategy(seed=3, memory_size=10):
    return KnowledgeFreeStrategy(memory_size, sketch_width=20,
                                 sketch_depth=5, random_state=seed)


def adaptive_spec_data(**engine_overrides):
    """A small adaptive scenario; engine knobs vary per test."""
    engine = {"driver": "batch", "batch_size": 512, "shards": 2}
    engine.update(engine_overrides)
    return {
        "name": "unit-adaptive",
        "seed": 5,
        "trials": 1,
        "stream": {"kind": "zipf",
                   "params": {"stream_size": 4000, "population_size": 200,
                              "alpha": 1.2}},
        "strategies": [
            {"kind": "knowledge-free",
             "params": {"memory_size": 10, "sketch_width": 20,
                        "sketch_depth": 5}},
        ],
        "adaptive_adversary": {
            "attacks": [
                {"kind": "memory_flood",
                 "params": {"insertion_budget": 800,
                            "repetitions_per_target": 4}},
                {"kind": "burst_sybil",
                 "params": {"distinct_identifiers": 16, "repetitions": 2,
                            "burst_threshold": 0.05}},
            ],
        },
        "engine": engine,
    }


class TestMaterializedStreamSource:
    def test_bit_identical_to_direct_run(self):
        stream = zipf_stream(5000, 300, alpha=1.5, random_state=7)
        direct = run_stream(make_strategy(), stream, batch_size=512)
        source = MaterializedStreamSource(stream, chunk_size=512)
        chunked = run_stream(make_strategy(), source, batch_size=512)
        assert np.array_equal(direct.outputs, chunked.outputs)
        assert direct.elements == chunked.elements == stream.size

    def test_chunk_boundaries_match_batch_size(self):
        stream = zipf_stream(1000, 50, alpha=2.0, random_state=1)
        source = MaterializedStreamSource(stream, chunk_size=300)
        sizes = []
        while True:
            chunk = source.next_chunk()
            if chunk is None:
                break
            sizes.append(chunk.size)
        assert sizes == [300, 300, 300, 100]

    def test_materialized_round_trip(self):
        stream = zipf_stream(1000, 50, alpha=2.0, random_state=1)
        source = MaterializedStreamSource(stream)
        assert np.array_equal(source.materialized().identifiers,
                              stream.identifiers)


class TestSamplerView:
    def test_observes_strategy_state(self):
        stream = zipf_stream(2000, 100, alpha=1.5, random_state=2)
        strategy = make_strategy()
        run_stream(strategy, stream, batch_size=512)
        view = SamplerView(strategy)
        assert set(view.memory()) == set(strategy.memory)
        assert view.elements_processed() == stream.size
        assert sum(view.shard_loads()) == stream.size

    def test_counts_feedback_queries(self):
        strategy = make_strategy()
        with telemetry.enabled(telemetry.MetricsRegistry()) as registry:
            view = SamplerView(strategy)
            view.memory()
            view.shard_loads()
            view.elements_processed()
            snapshot = registry.snapshot()
        assert snapshot["counters"]["adversary.feedback_queries"] == 3


class TestBudgetLedger:
    def test_zero_budget_rejected_at_construction(self):
        with pytest.raises(ValueError):
            AttackBudget(distinct_identifiers=0, repetitions=1)

    def test_clamps_to_remaining(self):
        ledger = BudgetLedger(AttackBudget(distinct_identifiers=10,
                                           repetitions=1))
        assert ledger.grant_insertions(7) == 7
        assert ledger.grant_insertions(7) == 3
        assert ledger.grant_insertions(7) == 0
        assert ledger.exhausted

    def test_exhaustion_mid_stream_stops_insertions(self):
        stream = zipf_stream(6000, 200, alpha=1.5, random_state=3)
        attack = MemoryFloodAttack(insertion_budget=40,
                                   repetitions_per_target=4)
        adversary = AdaptiveAdversary([attack], random_state=9)
        source = adversary.source(
            MaterializedStreamSource(stream, chunk_size=512))
        result = run_stream(make_strategy(), source, batch_size=512)
        assert attack.ledger.insertions_spent == 40
        assert attack.ledger.exhausted
        assert result.elements == stream.size + 40

    def test_accounting_across_rescheduling(self):
        # every schedule() call draws from the same ledger: total spend
        # across chunks never exceeds the budget, whatever the chunking
        stream = zipf_stream(6000, 200, alpha=1.5, random_state=3)
        for chunk_size in (256, 512, 2048):
            attack = MemoryFloodAttack(insertion_budget=100,
                                       repetitions_per_target=8)
            adversary = AdaptiveAdversary([attack], random_state=9)
            source = adversary.source(
                MaterializedStreamSource(stream, chunk_size=chunk_size))
            result = run_stream(make_strategy(), source,
                                batch_size=chunk_size)
            assert attack.ledger.insertions_spent <= 100
            assert result.elements == stream.size + \
                attack.ledger.insertions_spent


class TestAdaptiveAttacks:
    def run_attack(self, attack, seed=11):
        stream = zipf_stream(4000, 200, alpha=1.3, random_state=seed)
        strategy = make_strategy()
        adversary = AdaptiveAdversary([attack], random_state=seed)
        source = adversary.source(
            MaterializedStreamSource(stream, chunk_size=512))
        run_stream(strategy, source, batch_size=512)
        return stream, strategy, source

    def test_memory_flood_floods_held_identifiers(self):
        attack = MemoryFloodAttack(insertion_budget=800,
                                   repetitions_per_target=4)
        stream, _, source = self.run_attack(attack)
        assert attack.ledger.insertions_spent > 0
        biased = source.materialized()
        # the flood repeats identifiers already in the sampler's memory,
        # which are correct identifiers — no sybils are minted
        assert attack.malicious_identifiers == []
        assert set(biased.universe) == set(stream.universe)

    def test_eclipse_marks_sybils_malicious(self):
        attack = EclipseAttack(range(200), target_fraction=0.1,
                               insertion_budget=600)
        _, _, source = self.run_attack(attack)
        sybils = attack.malicious_identifiers
        assert len(sybils) > 0
        biased = source.materialized()
        assert set(sybils) <= set(biased.malicious)

    def test_eclipse_requires_population(self):
        with pytest.raises(ValueError):
            EclipseAttack([], target_fraction=0.1)

    def test_burst_sybil_triggers_on_fresh_arrivals(self):
        attack = BurstSybilAttack(range(200), distinct_identifiers=32,
                                  repetitions=2, burst_threshold=0.01)
        _, _, source = self.run_attack(attack)
        # the first chunk is all-fresh, so the low threshold must trigger
        assert attack.ledger.insertions_spent > 0
        assert len(attack.malicious_identifiers) > 0

    def test_burst_sybil_high_threshold_never_triggers(self):
        # a zipf chunk always carries repeats, so no chunk is 100% fresh
        attack = BurstSybilAttack(range(200), distinct_identifiers=32,
                                  repetitions=2, burst_threshold=1.0)
        _, _, source = self.run_attack(attack)
        assert attack.ledger.insertions_spent == 0
        assert attack.malicious_identifiers == []


class TestAdaptiveSpec:
    def test_round_trip(self):
        spec = ScenarioSpec.from_dict(adaptive_spec_data())
        again = ScenarioSpec.from_json(spec.to_json())
        assert again.to_dict() == spec.to_dict()
        assert isinstance(again.adaptive_adversary, AdaptiveAdversarySpec)

    def test_conflicts_with_static_adversary(self):
        data = adaptive_spec_data()
        data["adversary"] = {"kind": "flooding",
                             "params": {"distinct_identifiers": 4}}
        with pytest.raises(ScenarioError, match="adversary"):
            ScenarioSpec.from_dict(data)

    def test_conflicts_with_churn_section(self):
        data = adaptive_spec_data()
        del data["stream"]
        data["churn"] = {"churn_steps": 50, "stable_steps": 50}
        with pytest.raises(ScenarioError, match="churn"):
            ScenarioSpec.from_dict(data)

    def test_requires_batch_driver(self):
        with pytest.raises(ScenarioError, match="batch"):
            ScenarioSpec.from_dict(adaptive_spec_data(driver="scalar",
                                                      shards=None))

    def test_empty_attack_list_rejected(self):
        data = adaptive_spec_data()
        data["adaptive_adversary"]["attacks"] = []
        with pytest.raises(ScenarioError):
            ScenarioSpec.from_dict(data)

    def test_unknown_attack_rejected_at_validation(self):
        data = adaptive_spec_data()
        data["adaptive_adversary"]["attacks"] = [{"kind": "nonesuch"}]
        with pytest.raises(ScenarioError):
            ScenarioRunner(ScenarioSpec.from_dict(data)).validate()

    def test_omniscient_strategy_rejected(self):
        data = adaptive_spec_data()
        data["strategies"].append({"kind": "omniscient",
                                   "params": {"memory_size": 10}})
        with pytest.raises(ScenarioError, match="up front"):
            ScenarioRunner(ScenarioSpec.from_dict(data)).validate()


class TestAdaptiveBitIdentity:
    """The acceptance bar: adaptive runs identical across all backends."""

    def run_engine(self, **engine_overrides):
        spec = ScenarioSpec.from_dict(adaptive_spec_data(**engine_overrides))
        return json.dumps(run_scenario(spec).to_dict(), sort_keys=True)

    @pytest.fixture(scope="class")
    def serial_reference(self):
        return self.run_engine(backend="serial")

    def test_process_shm_matches_serial(self, serial_reference):
        assert self.run_engine(backend="process",
                               workers=2) == serial_reference

    def test_process_pickle_matches_serial(self, serial_reference):
        assert self.run_engine(backend="process", workers=2,
                               transport="pickle") == serial_reference

    def test_socket_matches_serial(self, serial_reference):
        assert self.run_engine(backend="socket",
                               workers=2) == serial_reference

    def test_autoscale_matches_serial(self, serial_reference):
        assert self.run_engine(
            backend="process", workers=2,
            autoscale={"min_workers": 1, "max_workers": 2,
                       "target_load_per_worker": 500,
                       "check_every": 256}) == serial_reference

    def test_rerun_is_deterministic(self, serial_reference):
        assert self.run_engine(backend="serial") == serial_reference


class TestAdaptiveTelemetry:
    def test_adversary_counters_in_snapshot(self):
        spec = ScenarioSpec.from_dict(adaptive_spec_data())
        with telemetry.enabled(telemetry.MetricsRegistry()) as registry:
            run_scenario(spec)
            snapshot = registry.snapshot()
        counters = snapshot["counters"]
        assert counters["adversary.feedback_queries"] > 0
        assert counters["adversary.chunks_adapted"] > 0
        assert counters["adversary.insertions.memory_flood"] > 0
        total = (counters["adversary.insertions.memory_flood"]
                 + counters.get("adversary.insertions.burst_sybil", 0))
        assert total > 0
