"""Tests for repro.streams.churn."""

import pytest

from repro.core import KnowledgeFreeStrategy
from repro.streams.churn import (
    ChurnEvent,
    ChurnModel,
    ChurnTrace,
    FlashCrowdChurnModel,
    ParetoChurnModel,
)


class TestChurnModel:
    def test_generates_trace_with_both_phases(self):
        model = ChurnModel(50, join_rate=0.2, leave_rate=0.2,
                           advertisements_per_step=4, random_state=0)
        trace = model.generate(churn_steps=100, stable_steps=50)
        assert isinstance(trace, ChurnTrace)
        assert trace.stream.size == (100 + 50) * 4
        assert trace.stability_time == 100 * 4
        assert trace.stable_population

    def test_events_recorded(self):
        model = ChurnModel(20, join_rate=0.5, leave_rate=0.5, random_state=1)
        trace = model.generate(churn_steps=200, stable_steps=10)
        assert trace.events
        assert any(event.joined for event in trace.events)
        assert any(not event.joined for event in trace.events)
        assert all(isinstance(event, ChurnEvent) for event in trace.events)

    def test_population_evolves_consistently(self):
        model = ChurnModel(30, join_rate=0.3, leave_rate=0.3, random_state=2)
        trace = model.generate(churn_steps=150, stable_steps=10)
        alive = set(range(30))
        for event in trace.events:
            if event.joined:
                assert event.identifier not in alive
                alive.add(event.identifier)
            else:
                assert event.identifier in alive
                alive.discard(event.identifier)
        assert sorted(alive) == trace.stable_population

    def test_universe_contains_all_ever_alive(self):
        model = ChurnModel(10, join_rate=0.8, leave_rate=0.1, random_state=3)
        trace = model.generate(churn_steps=100, stable_steps=10)
        assert set(trace.stable_population) <= set(trace.stream.universe)
        departed = {event.identifier for event in trace.events
                    if not event.joined}
        assert departed <= set(trace.stream.universe)

    def test_stable_suffix_only_contains_stable_nodes(self):
        model = ChurnModel(25, join_rate=0.4, leave_rate=0.4,
                           advertisements_per_step=3, random_state=4)
        trace = model.generate(churn_steps=120, stable_steps=80)
        suffix = model.stable_suffix(trace)
        assert suffix.size == 80 * 3
        assert set(suffix.identifiers) <= set(trace.stable_population)
        assert suffix.universe == trace.stable_population

    def test_no_churn_when_rates_zero(self):
        model = ChurnModel(15, join_rate=0.0, leave_rate=0.0, random_state=5)
        trace = model.generate(churn_steps=50, stable_steps=10)
        assert trace.events == []
        assert trace.stable_population == list(range(15))

    def test_validation(self):
        with pytest.raises(ValueError):
            ChurnModel(0)
        with pytest.raises(ValueError):
            ChurnModel(10, join_rate=1.5)
        with pytest.raises(ValueError):
            ChurnModel(10).generate(churn_steps=0, stable_steps=10)
        with pytest.raises(ValueError):
            ChurnModel(10).generate(churn_steps=10, stable_steps=-1)

    def test_zero_stable_steps_gives_pure_churn_trace(self):
        # stable_steps=0 is a legal pure-churn trace: T0 falls at the end of
        # the stream and the stable suffix is empty.
        model = ChurnModel(30, join_rate=0.3, leave_rate=0.3,
                           advertisements_per_step=4, random_state=8)
        trace = model.generate(churn_steps=120, stable_steps=0)
        assert trace.stream.size == 120 * 4
        assert trace.stability_time == trace.stream.size
        assert trace.stable_population
        suffix = model.stable_suffix(trace)
        assert suffix.size == 0
        assert suffix.universe == trace.stable_population

    def test_generation_matches_resorting_reference(self):
        # Regression for the incremental sorted-alive-list optimisation: the
        # draws must be bit-identical to the original implementation, which
        # re-sorted the alive set before every advertisement and every leave.
        import numpy as np

        def reference(seed, initial, join_rate, leave_rate, ads, churn, stable):
            rng = np.random.default_rng(seed)
            alive = set(range(initial))
            next_identifier = initial
            identifiers = []

            def advertise():
                if not alive:
                    return
                alive_list = sorted(alive)
                draws = rng.integers(0, len(alive_list), size=ads)
                for draw in draws:
                    identifiers.append(alive_list[int(draw)])

            for _ in range(churn):
                if rng.random() < join_rate:
                    alive.add(next_identifier)
                    next_identifier += 1
                if len(alive) > 1 and rng.random() < leave_rate:
                    alive_list = sorted(alive)
                    victim = alive_list[int(rng.integers(0, len(alive_list)))]
                    alive.discard(victim)
                advertise()
            stable_population = sorted(alive)
            for _ in range(stable):
                advertise()
            return identifiers, stable_population

        for seed in (0, 7, 2013):
            model = ChurnModel(25, join_rate=0.4, leave_rate=0.35,
                               advertisements_per_step=3, random_state=seed)
            trace = model.generate(churn_steps=150, stable_steps=40)
            expected_ids, expected_stable = reference(
                seed, 25, 0.4, 0.35, 3, 150, 40)
            assert trace.stream.identifiers == expected_ids
            assert trace.stable_population == expected_stable

    def test_generation_deterministic_per_seed(self):
        kwargs = dict(join_rate=0.25, leave_rate=0.25,
                      advertisements_per_step=5)
        first = ChurnModel(40, random_state=123, **kwargs).generate(100, 50)
        second = ChurnModel(40, random_state=123, **kwargs).generate(100, 50)
        assert first.stream.identifiers == second.stream.identifiers
        assert first.events == second.events
        assert first.stable_population == second.stable_population

    def test_sampler_converges_on_stable_suffix(self):
        # After T0 the sampler fed by the stable suffix only ever outputs
        # members of the stable population — the setting in which the paper's
        # Uniformity property is stated.
        model = ChurnModel(40, join_rate=0.3, leave_rate=0.3,
                           advertisements_per_step=5, random_state=6)
        trace = model.generate(churn_steps=200, stable_steps=400)
        suffix = model.stable_suffix(trace)
        strategy = KnowledgeFreeStrategy(10, sketch_width=10, sketch_depth=4,
                                         random_state=6)
        output = strategy.process_stream(suffix)
        assert set(output.identifiers) <= set(trace.stable_population)


class TestFlashCrowdChurnModel:
    def _model(self, seed=9, **kwargs):
        defaults = dict(burst_rate=0.1, burst_size=15, join_rate=0.05,
                        leave_rate=0.1, advertisements_per_step=4,
                        random_state=seed)
        defaults.update(kwargs)
        return FlashCrowdChurnModel(50, **defaults)

    def test_generates_trace_with_both_phases(self):
        trace = self._model().generate(churn_steps=150, stable_steps=50)
        assert trace.stream.size == (150 + 50) * 4
        assert trace.stability_time == 150 * 4
        assert trace.stable_population

    def test_bursts_bring_correlated_mass_arrivals(self):
        # with a meaningful burst rate, several joiners must land on the
        # same step (the correlated-arrival signature a trickle cannot show)
        trace = self._model(join_rate=0.0).generate(churn_steps=300,
                                                    stable_steps=10)
        joins_per_step = {}
        for event in trace.events:
            if event.joined:
                joins_per_step[event.time] = \
                    joins_per_step.get(event.time, 0) + 1
        burst_steps = [step for step, count in joins_per_step.items()
                       if count > 1]
        assert burst_steps, "no step received more than one joiner"
        assert max(joins_per_step.values()) >= 5

    def test_no_bursts_without_burst_events(self):
        # burst_rate 0 degenerates to the base trickle: one joiner per step
        # at most
        model = self._model(burst_rate=0.0, join_rate=0.5)
        trace = model.generate(churn_steps=200, stable_steps=10)
        joins_per_step = {}
        for event in trace.events:
            if event.joined:
                joins_per_step[event.time] = \
                    joins_per_step.get(event.time, 0) + 1
        assert joins_per_step
        assert max(joins_per_step.values()) == 1

    def test_deterministic_per_seed(self):
        first = self._model(seed=33).generate(100, 20)
        second = self._model(seed=33).generate(100, 20)
        assert first.stream.identifiers == second.stream.identifiers
        assert first.events == second.events
        assert first.stable_population == second.stable_population

    def test_base_model_trace_unchanged_by_arrivals_hook(self):
        # regression: the _arrivals hook refactor must not move a single
        # coin of the base model's seeded trace — replay the pre-hook
        # inline join/leave/advertise loop with the same seed
        import numpy as np

        model = ChurnModel(30, join_rate=0.3, leave_rate=0.3,
                           advertisements_per_step=3, random_state=12)
        trace = model.generate(churn_steps=120, stable_steps=30)
        rng = np.random.default_rng(12)
        alive = list(range(30))
        next_identifier = 30
        identifiers = []
        for step in range(120):
            if rng.random() < 0.3:
                alive.append(next_identifier)
                next_identifier += 1
            if len(alive) > 1 and rng.random() < 0.3:
                del alive[int(rng.integers(0, len(alive)))]
            for draw in rng.integers(0, len(alive), size=3):
                identifiers.append(alive[int(draw)])
        assert trace.stream.identifiers[:len(identifiers)] == identifiers

    def test_validation(self):
        with pytest.raises(ValueError):
            self._model(burst_rate=1.5)
        with pytest.raises(ValueError):
            self._model(burst_size=0)

    def test_registered_as_stream_component(self):
        from repro.scenarios import registry as registries
        import repro.scenarios  # noqa: F401 - triggers builtin registration

        stream = registries.STREAMS.build(
            "flash_crowd",
            {"initial_population": 40, "churn_steps": 50, "stable_steps": 20,
             "burst_rate": 0.1, "burst_size": 10},
            random_state=13)
        assert stream.stability_time == 50 * 5
        assert stream.stable_population
        assert len(stream.identifiers) == (50 + 20) * 5


class TestParetoChurnModel:
    def _model(self, seed=7, **kwargs):
        defaults = dict(join_rate=0.4, lifetime_shape=1.3, lifetime_scale=8,
                        advertisements_per_step=4, random_state=seed)
        defaults.update(kwargs)
        return ParetoChurnModel(60, **defaults)

    def test_generates_trace_with_both_phases(self):
        trace = self._model().generate(churn_steps=150, stable_steps=50)
        assert trace.stream.size == (150 + 50) * 4
        assert trace.stability_time == 150 * 4
        assert trace.stable_population

    def test_lifetimes_drive_departures(self):
        # with a short minimum lifetime and a long churn phase, most of the
        # initial population must have expired before T0
        trace = self._model(lifetime_scale=5).generate(churn_steps=300,
                                                       stable_steps=10)
        departures = [event for event in trace.events if not event.joined]
        assert departures
        departed_initial = {event.identifier for event in departures
                            if event.identifier < 60}
        assert len(departed_initial) > 30

    def test_population_never_empties(self):
        # aggressive expiry with no joins: the longest-lived node survives
        model = ParetoChurnModel(5, join_rate=0.0, lifetime_shape=3.0,
                                 lifetime_scale=1, random_state=11)
        trace = model.generate(churn_steps=500, stable_steps=5)
        assert len(trace.stable_population) >= 1

    def test_deterministic_per_seed(self):
        first = self._model(seed=21).generate(100, 20)
        second = self._model(seed=21).generate(100, 20)
        assert first.stream.identifiers == second.stream.identifiers
        assert first.events == second.events
        assert first.stable_population == second.stable_population

    def test_validation(self):
        with pytest.raises(ValueError):
            self._model(lifetime_shape=0)
        with pytest.raises(ValueError):
            self._model(lifetime_scale=-1)

    def test_registered_as_stream_component(self):
        from repro.scenarios import registry as registries
        import repro.scenarios  # noqa: F401 - triggers builtin registration

        stream = registries.STREAMS.build(
            "pareto_churn",
            {"initial_population": 40, "churn_steps": 50, "stable_steps": 20,
             "lifetime_scale": 5},
            random_state=13)
        assert stream.stability_time == 50 * 5
        assert stream.stable_population
        assert len(stream.identifiers) == (50 + 20) * 5
