"""Integration tests spanning multiple subsystems.

These tests exercise the paths a downstream user would actually follow:
adversary + stream + sampler + metrics, the service facade inside a gossip
simulation, and the full attack-analysis-to-simulation consistency story of
the paper (Table I effort thresholds vs observed Count-Min corruption).
"""

from collections import Counter

import numpy as np
import pytest

from repro.adversary import (
    AttackBudget,
    FloodingAttack,
    SybilIdentifierFactory,
    TargetedAttack,
    make_combined_adversary,
    make_peak_adversary,
)
from repro.analysis import flooding_attack_effort, targeted_attack_effort
from repro.core import (
    KnowledgeFreeStrategy,
    MinWiseSampler,
    NodeSamplingService,
    OmniscientStrategy,
    ReservoirSampler,
)
from repro.metrics import kl_divergence_to_uniform, kl_gain
from repro.network import NodeConfig, SystemConfig, SystemSimulation
from repro.sketches import CountMinSketch
from repro.streams import StreamOracle, uniform_stream


class TestAdversaryPipelineIntegration:
    def test_peak_adversary_vs_both_strategies(self):
        legitimate = uniform_stream(20_000, 200, random_state=0)
        adversary = make_peak_adversary(legitimate.universe,
                                        peak_frequency=20_000, random_state=0)
        biased = adversary.bias(legitimate)
        input_divergence = kl_divergence_to_uniform(biased)
        assert input_divergence > 0.5

        knowledge_free = KnowledgeFreeStrategy(10, sketch_width=10,
                                               sketch_depth=5, random_state=1)
        omniscient = OmniscientStrategy(StreamOracle.from_stream(biased), 10,
                                        random_state=1)
        kf_gain = kl_gain(biased, knowledge_free.process_stream(biased))
        omni_gain = kl_gain(biased, omniscient.process_stream(biased))
        assert omni_gain > 0.9
        assert kf_gain > 0.5
        assert omni_gain >= kf_gain - 0.05

    def test_combined_attack_with_insufficient_budget_fails(self):
        # An adversary using far fewer identifiers than L_{k,s} cannot corrupt
        # every row of the Count-Min sketch for the targeted identifier.
        width, depth, eta = 50, 10, 1e-1
        required = targeted_attack_effort(width, depth, eta)
        legitimate = uniform_stream(5_000, 100, random_state=2)
        adversary = make_combined_adversary(
            legitimate.universe, target_identifier=0,
            targeted_identifiers=max(2, required // 20),
            flooding_identifiers=max(2, required // 20),
            repetitions=5, random_state=2)
        biased = adversary.bias(legitimate)

        sketch = CountMinSketch(width=width, depth=depth, random_state=3)
        for identifier in biased:
            sketch.update(identifier)
        target_estimate = sketch.estimate(0)
        true_frequency = biased.frequencies()[0]
        # With so few distinct malicious identifiers, at least one of the 10
        # rows is very likely collision-free for the target.
        assert target_estimate <= true_frequency * 3

    def test_sampler_output_contains_correct_nodes_despite_attack(self):
        legitimate = uniform_stream(10_000, 100, random_state=4)
        factory = SybilIdentifierFactory(legitimate.universe)
        attack = FloodingAttack(AttackBudget(50, repetitions=100), factory)
        from repro.adversary import Adversary
        adversary = Adversary([attack], random_state=4)
        biased = adversary.bias(legitimate)

        strategy = KnowledgeFreeStrategy(25, sketch_width=25, sketch_depth=5,
                                         random_state=5)
        output = strategy.process_stream(biased)
        correct_in_output = set(output.identifiers) & set(legitimate.universe)
        # Freshness in practice: a large share of correct identifiers still
        # reaches the output despite the flooding attack.
        assert len(correct_in_output) > 50


class TestServiceInSystemSimulation:
    def test_gossip_system_end_to_end_metrics(self):
        config = SystemConfig(num_correct=20, num_malicious=4, rounds=30,
                              fanout=3, malicious_fanout=9,
                              sybil_identifiers_per_malicious=2,
                              node_config=NodeConfig(memory_size=8,
                                                     sketch_width=10,
                                                     sketch_depth=4))
        report = SystemSimulation(config, random_state=6).run().report()
        assert report.per_node
        # The sampling service must not amplify the adversary: the output
        # malicious fraction stays below the input one on average.
        input_fraction = np.mean([node.malicious_fraction_input
                                  for node in report.per_node])
        assert report.mean_malicious_fraction_output <= input_fraction + 0.02

    def test_service_facade_matches_strategy_behaviour(self):
        stream = uniform_stream(2_000, 50, random_state=7)
        service = NodeSamplingService.knowledge_free(memory_size=10,
                                                     sketch_width=10,
                                                     sketch_depth=4,
                                                     random_state=7)
        service.consume(stream)
        output = service.output_stream
        assert output.size == stream.size
        assert set(output.identifiers) <= set(stream.identifiers)
        samples = service.sample_many(100)
        assert set(samples) <= set(stream.identifiers)


class TestBaselineComparisonIntegration:
    def test_knowledge_free_beats_reservoir_under_attack(self):
        legitimate = uniform_stream(15_000, 150, random_state=8)
        adversary = make_peak_adversary(legitimate.universe,
                                        peak_frequency=15_000, random_state=8)
        biased = adversary.bias(legitimate)
        support = biased.universe

        knowledge_free = KnowledgeFreeStrategy(10, sketch_width=10,
                                               sketch_depth=5, random_state=9)
        reservoir = ReservoirSampler(10, random_state=9)
        kf_gain = kl_gain(biased, knowledge_free.process_stream(biased),
                          support=support)
        reservoir_gain = kl_gain(biased, reservoir.process_stream(biased),
                                 support=support)
        assert kf_gain > reservoir_gain

    def test_minwise_is_static_knowledge_free_is_fresh(self):
        # After convergence the min-wise sample never changes, whereas the
        # knowledge-free sampling memory keeps evolving (Freshness).
        stream = uniform_stream(8_000, 100, random_state=10)
        minwise = MinWiseSampler(10, random_state=10)
        knowledge_free = KnowledgeFreeStrategy(10, sketch_width=10,
                                               sketch_depth=5, random_state=10)
        half = stream.size // 2
        for identifier in stream.identifiers[:half]:
            minwise.process(identifier)
            knowledge_free.process(identifier)
        minwise_snapshot = sorted(minwise.memory)
        kf_snapshot = sorted(knowledge_free.memory)
        for identifier in stream.identifiers[half:]:
            minwise.process(identifier)
            knowledge_free.process(identifier)
        assert sorted(minwise.memory) == minwise_snapshot
        assert sorted(knowledge_free.memory) != kf_snapshot


class TestAttackEffortConsistency:
    def test_flooding_effort_fills_sketch_in_simulation(self):
        # Injecting E_k distinct identifiers should, with probability >= 0.9,
        # leave no untouched cell in any single row of width k.  The urn model
        # assumes identifiers hash independently, so the Sybil identifiers are
        # drawn at random rather than consecutively.
        width, eta = 20, 1e-1
        effort = flooding_attack_effort(width, eta)
        id_rng = np.random.default_rng(123)
        successes = 0
        runs = 60
        for seed in range(runs):
            sketch = CountMinSketch(width=width, depth=1, random_state=seed)
            identifiers = id_rng.integers(0, 2**40, size=effort)
            for identifier in identifiers:
                sketch.update(int(identifier))
            row = np.asarray(sketch.table)[0]
            if np.all(row > 0):
                successes += 1
        assert successes / runs >= 0.8

    def test_below_threshold_flooding_usually_fails(self):
        width = 20
        effort = flooding_attack_effort(width, 1e-1)
        few = max(width, effort // 3)
        id_rng = np.random.default_rng(321)
        successes = 0
        runs = 60
        for seed in range(runs):
            sketch = CountMinSketch(width=width, depth=1, random_state=seed)
            identifiers = id_rng.integers(0, 2**40, size=few)
            for identifier in identifiers:
                sketch.update(int(identifier))
            row = np.asarray(sketch.table)[0]
            if np.all(row > 0):
                successes += 1
        assert successes / runs < 0.5
