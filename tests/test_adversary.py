"""Tests for repro.adversary.adversary (the strong adversary controller)."""

import pytest

from repro.adversary import (
    Adversary,
    AttackBudget,
    FloodingAttack,
    PeakAttack,
    SybilIdentifierFactory,
    TargetedAttack,
    make_combined_adversary,
    make_flooding_adversary,
    make_peak_adversary,
    make_targeted_adversary,
)
from repro.streams import uniform_stream


class TestAdversary:
    def test_requires_attacks(self):
        with pytest.raises(ValueError):
            Adversary([])

    def test_effort_counts_distinct_identifiers(self):
        factory = SybilIdentifierFactory(correct_identifiers=range(10))
        targeted = TargetedAttack(1, AttackBudget(5), factory)
        flooding = FloodingAttack(AttackBudget(7), factory)
        adversary = Adversary([targeted, flooding], random_state=0)
        assert adversary.effort == 12
        assert len(set(adversary.malicious_identifiers)) == 12

    def test_malicious_stream_combines_attacks(self):
        factory = SybilIdentifierFactory(correct_identifiers=range(10))
        targeted = TargetedAttack(1, AttackBudget(3, repetitions=2), factory)
        flooding = FloodingAttack(AttackBudget(4), factory)
        adversary = Adversary([targeted, flooding], random_state=0)
        stream = adversary.malicious_stream()
        assert stream.size == 3 * 2 + 4

    def test_bias_interleaves_and_unions_universe(self):
        legitimate = uniform_stream(500, 20, random_state=1)
        adversary = make_peak_adversary(legitimate.universe,
                                        peak_frequency=200, random_state=2)
        biased = adversary.bias(legitimate)
        assert biased.size == 700
        assert set(legitimate.universe) <= set(biased.universe)
        assert set(adversary.malicious_identifiers) <= set(biased.universe)
        assert set(biased.malicious) == set(adversary.malicious_identifiers)

    def test_bias_preserves_legitimate_multiset(self):
        legitimate = uniform_stream(300, 10, random_state=3)
        adversary = make_flooding_adversary(legitimate.universe,
                                            distinct_identifiers=25,
                                            repetitions=2, random_state=4)
        biased = adversary.bias(legitimate)
        legitimate_counts = legitimate.frequencies()
        biased_counts = biased.frequencies()
        for identifier, count in legitimate_counts.items():
            assert biased_counts[identifier] >= count


class TestConvenienceConstructors:
    def test_peak_adversary(self):
        adversary = make_peak_adversary(range(10), peak_frequency=50,
                                        random_state=0)
        assert adversary.effort == 1
        assert adversary.malicious_stream().size == 50

    def test_targeted_adversary(self):
        adversary = make_targeted_adversary(range(10), target_identifier=3,
                                            distinct_identifiers=20,
                                            random_state=0)
        assert adversary.effort == 20

    def test_flooding_adversary(self):
        adversary = make_flooding_adversary(range(10),
                                            distinct_identifiers=15,
                                            repetitions=3, random_state=0)
        assert adversary.malicious_stream().size == 45

    def test_combined_adversary(self):
        adversary = make_combined_adversary(range(10), target_identifier=0,
                                            targeted_identifiers=5,
                                            flooding_identifiers=7,
                                            random_state=0)
        assert adversary.effort == 12
        assert len(adversary.attacks) == 2
