"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.streams import peak_attack_stream, uniform_stream, zipf_stream


@pytest.fixture
def rng():
    """A deterministic random generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_uniform_stream():
    """A small unbiased stream over 50 identifiers."""
    return uniform_stream(2_000, 50, random_state=1)


@pytest.fixture
def small_peak_stream():
    """A small peak-attacked stream over 100 identifiers."""
    return peak_attack_stream(5_000, 100, peak_fraction=0.5, random_state=2)


@pytest.fixture
def small_zipf_stream():
    """A small Zipf(1.2) biased stream over 200 identifiers."""
    return zipf_stream(3_000, 200, alpha=1.2, random_state=3)
