"""Tests for repro.analysis.urns (Section V attack-effort analysis)."""

import numpy as np
import pytest

from repro.analysis.urns import (
    PAPER_TABLE1_SETTINGS,
    PAPER_TABLE1_VALUES,
    UrnOccupancyProcess,
    coupon_collector_pmf,
    effort_table,
    flooding_attack_effort,
    occupancy_pmf,
    probability_collision_at,
    targeted_attack_effort,
)


class TestUrnOccupancyProcess:
    def test_initial_state(self):
        process = UrnOccupancyProcess(5)
        assert process.balls_thrown == 0
        assert process.distribution[0] == pytest.approx(1.0)

    def test_expected_occupied_formula(self):
        # E(N_l) = k (1 - (1 - 1/k)^l)
        process = UrnOccupancyProcess(10)
        for _ in range(7):
            process.throw()
        expected = 10 * (1 - (1 - 1 / 10) ** 7)
        assert process.expected_occupied() == pytest.approx(expected, rel=1e-9)

    def test_probability_no_new_urn_equals_expectation_over_k(self):
        process = UrnOccupancyProcess(6)
        for _ in range(4):
            process.throw()
        assert process.probability_no_new_urn() == pytest.approx(
            process.expected_occupied() / 6)

    def test_probability_all_occupied_monotone(self):
        process = UrnOccupancyProcess(4)
        previous = 0.0
        for _ in range(40):
            process.throw()
            current = process.probability_all_occupied()
            assert current >= previous - 1e-12
            previous = current

    def test_rejects_invalid_urn_count(self):
        with pytest.raises(ValueError):
            UrnOccupancyProcess(0)


class TestCollisionProbability:
    def test_first_ball_never_collides(self):
        assert probability_collision_at(10, 1) == pytest.approx(0.0)

    def test_second_ball_collides_with_probability_one_over_k(self):
        assert probability_collision_at(10, 2) == pytest.approx(0.1)

    def test_monotone_in_num_balls(self):
        values = [probability_collision_at(20, l) for l in range(1, 50)]
        assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            probability_collision_at(10, 0)


class TestTargetedAttackEffort:
    @pytest.mark.parametrize("k,s,eta,expected", [
        (10, 5, 1e-1, 38),
        (10, 5, 1e-4, 104),
        (50, 5, 1e-1, 193),
        (50, 10, 1e-1, 227),
        (50, 40, 1e-1, 296),
        (50, 5, 1e-4, 537),
        (50, 10, 1e-4, 571),
        (50, 40, 1e-4, 640),
    ])
    def test_matches_table1(self, k, s, eta, expected):
        assert targeted_attack_effort(k, s, eta) == expected

    def test_large_k_close_to_paper(self):
        # The k=250 rows of Table I differ by a couple of units, most likely
        # due to numerical evaluation differences in the original paper; we
        # require agreement within 0.5%.
        assert abs(targeted_attack_effort(250, 10, 1e-1) - 1138) <= 6
        assert abs(targeted_attack_effort(250, 10, 1e-4) - 2871) <= 15

    def test_linear_in_k(self):
        small = targeted_attack_effort(50, 10, 1e-1)
        large = targeted_attack_effort(100, 10, 1e-1)
        assert 1.7 <= large / small <= 2.3

    def test_increasing_in_confidence(self):
        low = targeted_attack_effort(50, 10, 1e-1)
        high = targeted_attack_effort(50, 10, 1e-4)
        assert high > low

    def test_increasing_in_rows(self):
        few = targeted_attack_effort(50, 5, 1e-1)
        many = targeted_attack_effort(50, 40, 1e-1)
        assert many > few

    def test_figure3_example_from_text(self):
        # "when k = 50 and s = 10, the adversary has to inject 150 distinct
        # node identifiers to have no more than 50% of chance" (Section V-A).
        # The exact value of Relation (2) is 135; the text rounds to ~150.
        assert 125 <= targeted_attack_effort(50, 10, 0.5) <= 160

    def test_invalid_eta(self):
        with pytest.raises(ValueError):
            targeted_attack_effort(10, 5, 0.0)
        with pytest.raises(ValueError):
            targeted_attack_effort(10, 5, 1.0)


class TestFloodingAttackEffort:
    @pytest.mark.parametrize("k,eta,expected", [
        (10, 1e-1, 44),
        (10, 1e-4, 110),
        (50, 1e-1, 306),
        # The paper's Table I reports 651 for (50, 1e-4); exact rational
        # evaluation of Relation (5) gives 650 — a boundary rounding
        # difference, so agreement within one unit is required.
        (50, 1e-4, 651),
    ])
    def test_matches_table1(self, k, eta, expected):
        assert abs(flooding_attack_effort(k, eta) - expected) <= 1

    def test_exceeds_targeted_effort(self):
        # A flooding attack always needs at least as many identifiers as a
        # targeted attack with the same parameters (Section V-B).
        for k, s, eta in [(10, 5, 1e-1), (50, 10, 1e-1), (50, 40, 1e-4)]:
            assert flooding_attack_effort(k, eta) >= targeted_attack_effort(
                k, s, eta)

    def test_single_urn(self):
        assert flooding_attack_effort(1, 0.5) == 1

    def test_monotone_in_k(self):
        values = [flooding_attack_effort(k, 1e-1) for k in (10, 20, 40, 80)]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_matches_coupon_collector_cdf(self):
        k, eta = 12, 1e-2
        effort = flooding_attack_effort(k, eta)
        pmf = coupon_collector_pmf(k, effort + 5)
        assert pmf[:effort + 1].sum() > 1 - eta
        assert pmf[:effort].sum() <= 1 - eta

    def test_invalid_eta(self):
        with pytest.raises(ValueError):
            flooding_attack_effort(10, 0.0)


class TestCouponCollectorPmf:
    def test_sums_to_one_with_enough_balls(self):
        pmf = coupon_collector_pmf(5, 200)
        assert pmf.sum() == pytest.approx(1.0, abs=1e-9)

    def test_no_mass_before_k(self):
        pmf = coupon_collector_pmf(6, 30)
        assert np.all(pmf[:6] == 0)

    def test_mean_close_to_harmonic_formula(self):
        k = 8
        pmf = coupon_collector_pmf(k, 500)
        mean = float(np.dot(np.arange(len(pmf)), pmf))
        harmonic = k * sum(1 / i for i in range(1, k + 1))
        assert mean == pytest.approx(harmonic, rel=1e-3)

    def test_single_urn(self):
        pmf = coupon_collector_pmf(1, 10)
        assert pmf[1] == pytest.approx(1.0)


class TestEffortTable:
    def test_reproduces_paper_rows(self):
        rows = effort_table(PAPER_TABLE1_SETTINGS[:4])
        for row in rows:
            published = PAPER_TABLE1_VALUES[(row.num_urns, row.num_rows, row.eta)]
            assert row.targeted_effort == published["targeted"]
            assert row.flooding_effort == published["flooding"]
