"""Tests for repro.network.simulator (the end-to-end SystemSimulation)."""

from dataclasses import replace

import pytest

from repro.network.node import NodeConfig
from repro.network.simulator import (
    DisseminationProtocol,
    SystemConfig,
    SystemSimulation,
)


class TestSystemConfig:
    def test_defaults(self):
        config = SystemConfig()
        assert config.protocol is DisseminationProtocol.GOSSIP
        assert config.num_correct == 50

    def test_validation(self):
        with pytest.raises(ValueError):
            SystemConfig(num_correct=0)
        with pytest.raises(ValueError):
            SystemConfig(num_malicious=-1)
        with pytest.raises(ValueError):
            SystemConfig(rounds=0)


class TestSystemSimulation:
    def test_gossip_end_to_end(self):
        config = SystemConfig(num_correct=15, num_malicious=3, rounds=15,
                              node_config=NodeConfig(memory_size=5,
                                                     sketch_width=8,
                                                     sketch_depth=3))
        simulation = SystemSimulation(config, random_state=0).run()
        report = simulation.report()
        assert len(report.per_node) == 15
        assert report.mean_input_divergence >= 0
        assert report.mean_output_divergence >= 0
        assert 0 <= report.mean_malicious_fraction_output <= 1

    def test_random_walk_end_to_end(self):
        config = SystemConfig(num_correct=10, num_malicious=2, rounds=5,
                              protocol=DisseminationProtocol.RANDOM_WALK,
                              node_config=NodeConfig(memory_size=5,
                                                     sketch_width=8,
                                                     sketch_depth=3))
        simulation = SystemSimulation(config, random_state=1).run()
        report = simulation.report()
        assert len(report.per_node) <= 10
        assert report.per_node  # at least some nodes received identifiers

    def test_sampler_reduces_malicious_overrepresentation(self):
        # With malicious nodes gossiping far more aggressively than correct
        # ones, the sampler output should contain a smaller malicious fraction
        # than the raw input stream.
        config = SystemConfig(num_correct=20, num_malicious=4, rounds=40,
                              fanout=2, malicious_fanout=10,
                              sybil_identifiers_per_malicious=2,
                              node_config=NodeConfig(memory_size=10,
                                                     sketch_width=10,
                                                     sketch_depth=4))
        simulation = SystemSimulation(config, random_state=2).run()
        report = simulation.report()
        mean_input_malicious = sum(
            node.malicious_fraction_input for node in report.per_node
        ) / len(report.per_node)
        assert report.mean_malicious_fraction_output < mean_input_malicious

    def test_run_with_explicit_rounds(self):
        config = SystemConfig(num_correct=5, num_malicious=0, rounds=3)
        simulation = SystemSimulation(config, random_state=3)
        simulation.run(rounds=7)
        assert simulation.engine.rounds_executed == 7

    def test_empty_report_aggregates(self):
        from repro.network.simulator import SystemReport
        report = SystemReport(per_node=[])
        assert report.mean_gain == 0.0
        assert report.mean_input_divergence == 0.0
        assert report.mean_output_divergence == 0.0
        assert report.mean_malicious_fraction_output == 0.0


class TestBatchDeliveryEquivalence:
    """Batch ingestion must reproduce the scalar delivery path exactly.

    The simulator now feeds each node's sampling service one chunk per round
    through ``on_receive_batch``; because the engine's batch processing is
    bit-identical to per-element processing for the same coins, the whole
    simulation — per-node input streams, sampler outputs and uniformity
    reports — must match per-element delivery bit for bit.
    """

    @pytest.mark.parametrize("protocol", [DisseminationProtocol.GOSSIP,
                                          DisseminationProtocol.RANDOM_WALK])
    def test_reports_and_streams_match_scalar_path(self, protocol):
        base = SystemConfig(num_correct=12, num_malicious=3, rounds=12,
                            protocol=protocol,
                            sybil_identifiers_per_malicious=2,
                            node_config=NodeConfig(memory_size=5,
                                                   sketch_width=8,
                                                   sketch_depth=3))
        batch = SystemSimulation(replace(base, batch_delivery=True),
                                 random_state=42).run()
        scalar = SystemSimulation(replace(base, batch_delivery=False),
                                  random_state=42).run()
        batch_report = batch.report()
        scalar_report = scalar.report()
        assert len(batch_report.per_node) == len(scalar_report.per_node)
        for batch_node, scalar_node in zip(batch_report.per_node,
                                           scalar_report.per_node):
            assert batch_node == scalar_node
        for node_id in batch.engine.correct_ids:
            assert (batch.engine.input_stream_of(node_id).identifiers
                    == scalar.engine.input_stream_of(node_id).identifiers)
            assert (batch.engine.output_stream_of(node_id).identifiers
                    == scalar.engine.output_stream_of(node_id).identifiers)

    def test_batch_delivery_is_the_default(self):
        assert SystemConfig().batch_delivery is True
