"""Tests for the distinct-count sketches (Flajolet-Martin, HyperLogLog)."""

import numpy as np
import pytest

from repro.sketches.flajolet_martin import FlajoletMartinSketch, _rho
from repro.sketches.hyperloglog import HyperLogLog


class TestRho:
    def test_known_values(self):
        assert _rho(1) == 0
        assert _rho(2) == 1
        assert _rho(8) == 3
        assert _rho(12) == 2

    def test_zero_is_large(self):
        assert _rho(0) >= 32


class TestFlajoletMartin:
    def test_empty_estimate_is_zero(self):
        assert FlajoletMartinSketch(random_state=0).estimate() == 0.0

    def test_estimate_order_of_magnitude(self):
        sketch = FlajoletMartinSketch(num_registers=32, random_state=1)
        distinct = 2_000
        sketch.update_many(range(distinct))
        estimate = sketch.estimate()
        assert distinct / 4 <= estimate <= distinct * 4

    def test_duplicates_do_not_inflate(self):
        sketch = FlajoletMartinSketch(num_registers=32, random_state=2)
        for _ in range(10):
            sketch.update_many(range(100))
        estimate = sketch.estimate()
        assert estimate <= 100 * 4
        assert sketch.total == 1_000

    def test_rejects_invalid_parameters(self):
        with pytest.raises(ValueError):
            FlajoletMartinSketch(num_registers=0)
        with pytest.raises(ValueError):
            FlajoletMartinSketch(register_bits=0)


class TestHyperLogLog:
    def test_empty_estimate_is_zero(self):
        assert HyperLogLog(random_state=0).estimate() == 0.0

    def test_estimate_accuracy(self):
        sketch = HyperLogLog(precision=10, random_state=3)
        distinct = 5_000
        sketch.update_many(range(distinct))
        estimate = sketch.estimate()
        # 1.04/sqrt(1024) ~ 3.2% standard error; allow a generous margin.
        assert abs(estimate - distinct) / distinct < 0.25

    def test_duplicates_do_not_inflate(self):
        sketch = HyperLogLog(precision=8, random_state=4)
        for _ in range(5):
            sketch.update_many(range(500))
        assert abs(sketch.estimate() - 500) / 500 < 0.4
        assert sketch.total == 2_500

    def test_small_range_correction(self):
        sketch = HyperLogLog(precision=10, random_state=5)
        sketch.update_many(range(10))
        assert 1 <= sketch.estimate() <= 30

    def test_merge(self):
        first = HyperLogLog(precision=8, random_state=6)
        # Merge requires identical hash functions: clone via shared state.
        second = HyperLogLog(precision=8, random_state=6)
        second._hash_function = first._hash_function
        first.update_many(range(0, 1_000))
        second.update_many(range(500, 1_500))
        first.merge(second)
        assert abs(first.estimate() - 1_500) / 1_500 < 0.35

    def test_merge_rejects_mismatched_precision(self):
        with pytest.raises(ValueError):
            HyperLogLog(precision=8, random_state=0).merge(
                HyperLogLog(precision=10, random_state=0))

    def test_precision_bounds(self):
        with pytest.raises(ValueError):
            HyperLogLog(precision=2)
        with pytest.raises(ValueError):
            HyperLogLog(precision=20)

    def test_relative_error_formula(self):
        sketch = HyperLogLog(precision=10)
        assert sketch.relative_error() == pytest.approx(1.04 / 32)
