"""Tests for repro.metrics.uniformity."""

import numpy as np
import pytest

from repro.core import KnowledgeFreeStrategy
from repro.metrics.uniformity import (
    UniformityReport,
    chi_square_uniformity_test,
    uniformity_of_output,
)
from repro.streams import IdentifierStream, peak_attack_stream, uniform_stream


class TestChiSquareUniformityTest:
    def test_uniform_samples_accepted(self):
        rng = np.random.default_rng(0)
        population = list(range(50))
        samples = rng.integers(0, 50, size=10_000).tolist()
        report = chi_square_uniformity_test(samples, population)
        assert report.is_uniform
        assert report.p_value > 0.01
        assert report.coverage == 1.0
        assert report.sample_size == 10_000

    def test_heavily_biased_samples_rejected(self):
        population = list(range(50))
        samples = [0] * 5_000 + list(range(50)) * 10
        report = chi_square_uniformity_test(samples, population)
        assert not report.is_uniform
        assert report.p_value < 0.01
        assert report.max_relative_deviation > 5

    def test_moderately_biased_samples_rejected(self):
        rng = np.random.default_rng(1)
        population = list(range(20))
        weights = np.ones(20)
        weights[:5] = 3.0
        probabilities = weights / weights.sum()
        samples = rng.choice(20, size=20_000, p=probabilities).tolist()
        report = chi_square_uniformity_test(samples, population)
        assert not report.is_uniform

    def test_samples_outside_population_counted(self):
        report = chi_square_uniformity_test([1, 2, 99, 98], [1, 2, 3])
        assert report.sample_size == 4
        assert report.coverage == pytest.approx(2 / 3)

    def test_all_samples_outside_population(self):
        report = chi_square_uniformity_test([99, 98], [1, 2, 3])
        assert not report.is_uniform
        assert report.p_value == 0.0
        assert report.coverage == 0.0

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError):
            chi_square_uniformity_test([], [1, 2])
        with pytest.raises(ValueError):
            chi_square_uniformity_test([1], [])

    def test_invalid_significance(self):
        with pytest.raises(ValueError):
            chi_square_uniformity_test([1], [1, 2], significance=0.0)

    def test_report_is_dataclass(self):
        report = chi_square_uniformity_test([1, 2, 1, 2], [1, 2])
        assert isinstance(report, UniformityReport)
        assert report.population_size == 2


class TestUniformityOfOutput:
    def test_omniscient_like_uniform_output_accepted(self):
        rng = np.random.default_rng(2)
        population = list(range(40))
        output = IdentifierStream(
            identifiers=rng.integers(0, 40, size=8_000).tolist(),
            universe=population,
        )
        report = uniformity_of_output(output)
        assert report.is_uniform

    def test_biased_input_stream_rejected(self):
        stream = peak_attack_stream(10_000, 40, peak_fraction=0.5,
                                    random_state=3)
        report = uniformity_of_output(stream)
        assert not report.is_uniform

    def test_warm_up_discarded(self):
        # A stream whose first quarter is degenerate but whose remainder is
        # uniform should pass once the warm-up is discarded.
        rng = np.random.default_rng(4)
        population = list(range(30))
        identifiers = [0] * 2_000 + rng.integers(0, 30, size=6_000).tolist()
        stream = IdentifierStream(identifiers=identifiers, universe=population)
        assert uniformity_of_output(stream, discard_fraction=0.25).is_uniform
        assert not uniformity_of_output(stream, discard_fraction=0.0).is_uniform

    def test_invalid_discard_fraction(self):
        stream = uniform_stream(100, 10, random_state=5)
        with pytest.raises(ValueError):
            uniformity_of_output(stream, discard_fraction=1.0)

    def test_knowledge_free_output_on_uniform_input_is_uniform(self):
        stream = uniform_stream(20_000, 40, random_state=6)
        strategy = KnowledgeFreeStrategy(10, sketch_width=10, sketch_depth=5,
                                         random_state=6)
        output = strategy.process_stream(stream)
        report = uniformity_of_output(output, population=stream.universe,
                                      significance=0.001)
        # The output may retain slight autocorrelation; require that it is not
        # grossly non-uniform (deviation bounded) and covers the population.
        assert report.coverage == 1.0
        assert report.max_relative_deviation < 3.0
