"""Tests for repro.streams.stream (IdentifierStream and helpers)."""

import pytest

from repro.streams.stream import (
    IdentifierStream,
    merge_streams,
    stream_from_frequencies,
)


class TestIdentifierStream:
    def test_basic_properties(self):
        stream = IdentifierStream(identifiers=[1, 2, 2, 3])
        assert stream.size == 4
        assert len(stream) == 4
        assert stream.universe == [1, 2, 3]
        assert stream.population_size == 3
        assert list(stream) == [1, 2, 2, 3]
        assert stream[0] == 1

    def test_explicit_universe(self):
        stream = IdentifierStream(identifiers=[1, 1], universe=[1, 2, 3])
        assert stream.population_size == 3

    def test_frequencies_and_probabilities(self):
        stream = IdentifierStream(identifiers=[1, 2, 2, 3, 3, 3])
        assert stream.frequencies() == {1: 1, 2: 2, 3: 3}
        probabilities = stream.occurrence_probabilities()
        assert probabilities[3] == pytest.approx(0.5)
        assert sum(probabilities.values()) == pytest.approx(1.0)

    def test_max_frequency(self):
        stream = IdentifierStream(identifiers=[5, 5, 5, 6])
        assert stream.max_frequency() == 3
        assert IdentifierStream(identifiers=[]).max_frequency() == 0

    def test_statistics(self):
        stream = IdentifierStream(identifiers=[1, 1, 2])
        stats = stream.statistics()
        assert stats == {"size": 3, "distinct": 2, "max_frequency": 2}

    def test_correct_vs_malicious(self):
        stream = IdentifierStream(identifiers=[1, 2, 3], malicious=[2])
        assert stream.malicious == [2]
        assert stream.correct == [1, 3]

    def test_empty_probabilities(self):
        assert IdentifierStream(identifiers=[]).occurrence_probabilities() == {}

    def test_truncate(self):
        stream = IdentifierStream(identifiers=list(range(10)))
        prefix = stream.truncate(4)
        assert prefix.identifiers == [0, 1, 2, 3]
        assert prefix.universe == stream.universe

    def test_truncate_rejects_non_positive(self):
        with pytest.raises(ValueError):
            IdentifierStream(identifiers=[1]).truncate(0)

    def test_shuffled_preserves_multiset(self):
        stream = IdentifierStream(identifiers=[1, 1, 2, 3, 3, 3])
        shuffled = stream.shuffled(random_state=0)
        assert sorted(shuffled.identifiers) == sorted(stream.identifiers)
        assert shuffled.universe == stream.universe

    def test_prefixes(self):
        stream = IdentifierStream(identifiers=list(range(10)))
        prefixes = list(stream.prefixes([3, 5, 100]))
        assert [p.size for p in prefixes] == [3, 5, 10]


class TestMergeStreams:
    def test_merge_preserves_elements(self):
        first = IdentifierStream(identifiers=[1, 1, 2])
        second = IdentifierStream(identifiers=[3, 4])
        merged = merge_streams([first, second], random_state=0)
        assert sorted(merged.identifiers) == [1, 1, 2, 3, 4]
        assert merged.universe == [1, 2, 3, 4]

    def test_merge_preserves_relative_order(self):
        first = IdentifierStream(identifiers=[10, 11, 12])
        second = IdentifierStream(identifiers=[20])
        merged = merge_streams([first, second], random_state=1)
        first_positions = [merged.identifiers.index(identifier)
                           for identifier in [10, 11, 12]]
        assert first_positions == sorted(first_positions)

    def test_merge_unions_malicious(self):
        first = IdentifierStream(identifiers=[1], malicious=[1])
        second = IdentifierStream(identifiers=[2], malicious=[])
        merged = merge_streams([first, second], random_state=0)
        assert merged.malicious == [1]

    def test_merge_requires_streams(self):
        with pytest.raises(ValueError):
            merge_streams([])


class TestStreamFromFrequencies:
    def test_exact_frequencies_realised(self):
        stream = stream_from_frequencies({1: 3, 2: 1, 3: 0}, random_state=0)
        assert stream.frequencies() == {1: 3, 2: 1}
        assert stream.universe == [1, 2, 3]

    def test_unshuffled_is_sorted_blocks(self):
        stream = stream_from_frequencies({2: 2, 1: 1}, shuffle=False)
        assert stream.identifiers == [1, 2, 2]

    def test_negative_frequency_rejected(self):
        with pytest.raises(ValueError):
            stream_from_frequencies({1: -1})

    def test_malicious_marking(self):
        stream = stream_from_frequencies({1: 1, 2: 1}, malicious=[2])
        assert stream.malicious == [2]
