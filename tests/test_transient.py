"""Tests for repro.analysis.transient (mixing time and convergence tracking)."""

import numpy as np
import pytest

from repro.analysis.markov import uniform_chain_model
from repro.analysis.transient import (
    ConvergenceTracker,
    empirical_convergence_position,
    mixing_time,
)
from repro.core import EmpiricalOmniscientStrategy
from repro.streams import peak_attack_stream, uniform_stream


class TestMixingTime:
    def test_returns_positive_step_count(self):
        model = uniform_chain_model(5, 2, bias={0: 0.4, 1: 0.2, 2: 0.2,
                                                3: 0.1, 4: 0.1})
        steps = mixing_time(model, tolerance=0.05)
        assert steps >= 1

    def test_tighter_tolerance_needs_more_steps(self):
        model = uniform_chain_model(5, 2, bias={0: 0.5, 1: 0.2, 2: 0.1,
                                                3: 0.1, 4: 0.1})
        loose = mixing_time(model, tolerance=0.2)
        tight = mixing_time(model, tolerance=0.001)
        assert tight >= loose

    def test_stronger_bias_slows_mixing(self):
        balanced = uniform_chain_model(5, 2)
        skewed = uniform_chain_model(5, 2, bias={0: 0.9, 1: 0.025, 2: 0.025,
                                                 3: 0.025, 4: 0.025})
        assert mixing_time(skewed, tolerance=0.01) >= \
            mixing_time(balanced, tolerance=0.01)

    def test_custom_initial_state(self):
        model = uniform_chain_model(5, 2)
        steps = mixing_time(model, tolerance=0.05, initial_state=[3, 4])
        assert steps >= 1

    def test_unreachable_tolerance_raises(self):
        model = uniform_chain_model(5, 2, bias={0: 0.5, 1: 0.2, 2: 0.1,
                                                3: 0.1, 4: 0.1})
        with pytest.raises(RuntimeError):
            mixing_time(model, tolerance=1e-9, max_steps=2)

    def test_invalid_arguments(self):
        model = uniform_chain_model(4, 2)
        with pytest.raises(ValueError):
            mixing_time(model, tolerance=0)


class TestConvergenceTracker:
    def test_uniform_stream_converges_immediately(self):
        rng = np.random.default_rng(0)
        population = list(range(20))
        tracker = ConvergenceTracker(population, window_size=500,
                                     tolerance=0.2)
        tracker.update_many(rng.integers(0, 20, size=2_000).tolist())
        assert tracker.has_converged
        assert tracker.converged_at == 500
        assert len(tracker.divergence_series()) == 4

    def test_degenerate_stream_never_converges(self):
        tracker = ConvergenceTracker(range(20), window_size=200,
                                     tolerance=0.2)
        tracker.update_many([0] * 1_000)
        assert not tracker.has_converged
        assert tracker.converged_at is None
        assert all(point.divergence > 0.2
                   for point in tracker.divergence_series())

    def test_convergence_after_warmup(self):
        rng = np.random.default_rng(1)
        population = list(range(10))
        identifiers = [0] * 400 + rng.integers(0, 10, size=1_600).tolist()
        position = empirical_convergence_position(identifiers, population,
                                                  window_size=400,
                                                  tolerance=0.2)
        assert position is not None
        assert position > 400

    def test_incomplete_window_not_evaluated(self):
        tracker = ConvergenceTracker(range(5), window_size=100)
        tracker.update_many([1] * 99)
        assert tracker.divergence_series() == []

    def test_validation(self):
        with pytest.raises(ValueError):
            ConvergenceTracker([], window_size=10)
        with pytest.raises(ValueError):
            ConvergenceTracker(range(5), window_size=0)
        with pytest.raises(ValueError):
            ConvergenceTracker(range(5), tolerance=0)

    def test_omniscient_output_converges_on_biased_stream(self):
        # The paper's Figure 9 observation: the omniscient output reaches its
        # stationary (uniform) regime after a few thousand identifiers.
        stream = peak_attack_stream(20_000, 100, peak_fraction=0.5,
                                    random_state=2)
        strategy = EmpiricalOmniscientStrategy(stream, memory_size=10,
                                               random_state=2)
        output = strategy.process_stream(stream)
        position = empirical_convergence_position(
            output.identifiers, stream.universe, window_size=2_000,
            tolerance=0.25)
        assert position is not None
        assert position <= 10_000
