"""Tests for repro.serve (the always-on sampling service).

The headline guarantee under test is the wire bit-identity invariant: a
fixed sequence of ingest batches over the wire — spread across several
client connections, with a mid-run drain/restart — yields outputs,
samples and merged memory identical to the batch engine run on the
concatenated stream with the same seed, on the serial and socket
backends alike.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.bench.compare import compare_records, load_record
from repro.cli import main
from repro.engine import AuthenticationError, ShardedSamplingService
from repro.serve import (
    BackpressureError,
    IngestRetryError,
    ServeClient,
    ServeError,
    ServerThread,
    run_loadgen,
)
from repro.streams import zipf_stream
from repro.telemetry import MetricsRegistry

STREAM = zipf_stream(12_288, 1_200, alpha=1.2, random_state=11)
IDS = np.asarray(STREAM.identifiers, dtype=np.int64)
TOKEN = "serve-test-token"


def _service(seed=31, shards=4, backend="serial", **kwargs):
    return ShardedSamplingService.knowledge_free(
        shards=shards, memory_size=10, sketch_width=32, sketch_depth=4,
        random_state=seed, backend=backend, **kwargs)


def _reference(seed=31, shards=4):
    """Outputs/samples/memory of a local batch run on the full stream."""
    service = _service(seed, shards)
    outputs = [int(value) for value in service.on_receive_batch(IDS)]
    samples = service.sample_many(40, strict=False)
    memory = service.merged_memory()
    service.close()
    return outputs, samples, memory


# --------------------------------------------------------------------- #
# Wire equivalence
# --------------------------------------------------------------------- #
class TestWireEquivalence:

    @pytest.mark.parametrize("backend", ["serial", "socket"])
    def test_multi_connection_with_drain_restart(self, backend, tmp_path):
        """Wire run == local batch run, across a drain/restart boundary."""
        ref_outputs, ref_samples, ref_memory = _reference()
        kwargs = {"workers": 2} if backend == "socket" else {}
        state = tmp_path / "state.snap"
        half = IDS.size // 2  # batch-aligned: 6 * 1024
        outputs = []

        thread = ServerThread(_service(backend=backend, **kwargs), TOKEN,
                              state_file=str(state))
        address = thread.start()
        clients = [ServeClient(address, auth_token=TOKEN) for _ in range(3)]
        batches = [IDS[start:start + 1024] for start in range(0, half, 1024)]
        for index, batch in enumerate(batches):
            reply = clients[index % 3].ingest(batch, return_outputs=True)
            outputs.extend(reply["outputs"])
        report = clients[0].drain()
        assert report["state_file"] == str(state)
        for client in clients:
            client.close()
        thread.drain()
        assert state.exists()

        restored = ShardedSamplingService.restore(
            state.read_bytes(), backend=backend, **kwargs)
        thread = ServerThread(restored, TOKEN, state_file=str(state))
        address = thread.start()
        clients = [ServeClient(address, auth_token=TOKEN) for _ in range(2)]
        batches = [IDS[start:start + 1024]
                   for start in range(half, IDS.size, 1024)]
        for index, batch in enumerate(batches):
            reply = clients[index % 2].ingest(batch, return_outputs=True)
            outputs.extend(reply["outputs"])
        samples = clients[0].sample_many(40, strict=False)
        memory = clients[1].memory()
        stats = clients[0].stats()
        for client in clients:
            client.close()
        thread.drain()

        assert outputs == ref_outputs
        assert samples == ref_samples
        assert memory == ref_memory
        assert stats["elements"] == IDS.size

    def test_arrival_order_rule_across_connections(self):
        """Ack-sequenced sends from 3 clients apply in ack order."""
        order = [0, 2, 1, 1, 0, 2, 2, 0, 1, 0, 1, 2]
        batches = [IDS[index * 1024:(index + 1) * 1024]
                   for index in range(len(order))]
        reference = _service(seed=77)
        for batch in batches:
            reference.on_receive_batch(batch)
        ref_samples = reference.sample_many(20, strict=False)
        ref_memory = reference.merged_memory()
        reference.close()

        thread = ServerThread(_service(seed=77), TOKEN)
        address = thread.start()
        clients = {key: ServeClient(address, auth_token=TOKEN)
                   for key in set(order)}
        for key, batch in zip(order, batches):
            # waiting for each ack before the next send (from any
            # connection) pins the global arrival order — the protocol's
            # normative ordering rule
            clients[key].ingest(batch)
        samples = clients[0].sample_many(20, strict=False)
        memory = clients[1].memory()
        for client in clients.values():
            client.close()
        thread.drain()
        assert samples == ref_samples
        assert memory == ref_memory

    def test_concurrent_clients_all_batches_land(self):
        """Unsequenced concurrent ingest: totals add up, queue drains."""
        thread = ServerThread(_service(seed=5), TOKEN, connection_hwm=4)
        address = thread.start()
        errors = []

        def work(offset):
            try:
                with ServeClient(address, auth_token=TOKEN) as client:
                    for start in range(offset, IDS.size, 4 * 1024):
                        client.ingest(IDS[start:start + 1024],
                                      max_retries=32)
            except BaseException as error:  # surfaced below
                errors.append(error)

        workers = [threading.Thread(target=work, args=(lane * 1024,))
                   for lane in range(4)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=60)
        assert not errors
        with ServeClient(address, auth_token=TOKEN) as client:
            stats = client.stats()
        thread.drain()
        assert stats["elements"] == IDS.size
        assert stats["inflight"] == 0


# --------------------------------------------------------------------- #
# Backpressure and errors
# --------------------------------------------------------------------- #
class _SlowService:
    """Wrap a service so every ingest stalls (forces queue buildup)."""

    def __init__(self, inner, delay=0.2):
        self._inner = inner
        self._delay = delay

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def on_receive_batch(self, identifiers):
        time.sleep(self._delay)
        return self._inner.on_receive_batch(identifiers)


class TestBackpressure:

    def test_pipelined_overload_rejects_in_order(self):
        thread = ServerThread(_SlowService(_service(seed=1)), TOKEN,
                              queue_cap=1, connection_hwm=16,
                              retry_after=0.01)
        address = thread.start()
        client = ServeClient(address, auth_token=TOKEN)
        for seq in range(4):
            client.send_command("ingest", {"ids": IDS[:64], "seq": seq})
        replies = [client.read_reply() for _ in range(4)]
        client.close()
        thread.drain()
        # replies arrive in request order, rejections included
        assert [reply[1]["seq"] for reply in replies] == [0, 1, 2, 3]
        assert replies[0][0] is True
        rejected = [reply for ok, reply in replies if not ok]
        assert rejected, "expected at least one backpressure rejection"
        for reply in rejected:
            assert reply["error"] == "backpressure"
            assert reply["retry_after"] > 0

    def test_client_retries_through_backpressure(self):
        thread = ServerThread(_SlowService(_service(seed=2), delay=0.05),
                              TOKEN, queue_cap=1, connection_hwm=16,
                              retry_after=0.02)
        address = thread.start()
        with ServeClient(address, auth_token=TOKEN) as probe:
            with ServeClient(address, auth_token=TOKEN) as client:
                # saturate the queue, then check the retry loop lands the
                # batch anyway
                client.send_command("ingest", {"ids": IDS[:64]})
                result = probe.ingest(IDS[64:128], max_retries=50)
                assert result["count"] == 64
                assert client.read_reply()[0] is True
        thread.drain()

    def test_wrong_token_is_rejected(self):
        thread = ServerThread(_service(seed=3), TOKEN)
        address = thread.start()
        with pytest.raises(AuthenticationError):
            ServeClient(address, auth_token="wrong-token")
        thread.drain()

    def test_remote_failure_surfaces_as_serve_error(self):
        thread = ServerThread(_service(seed=4), TOKEN)
        address = thread.start()
        with ServeClient(address, auth_token=TOKEN) as client:
            with pytest.raises(ServeError):
                client.sample_many(5, strict=True)  # empty ensemble
            assert client.ping()  # session survives the failed request
        thread.drain()


class TestIngestBackoff:
    """The client retry loop: server hints, exponential growth, a cap,
    and a typed error once the budget runs out."""

    def _stub_client(self, monkeypatch, retry_after):
        client = ServeClient.__new__(ServeClient)  # no connection needed
        requests = []

        def fail(command, payload):
            requests.append(command)
            raise BackpressureError(retry_after)

        sleeps = []
        monkeypatch.setattr(client, "_request", fail, raising=False)
        monkeypatch.setattr("repro.serve.client.time.sleep", sleeps.append)
        return client, requests, sleeps

    def test_backoff_honours_hint_doubles_and_caps(self, monkeypatch):
        client, requests, sleeps = self._stub_client(monkeypatch, 0.04)
        with pytest.raises(IngestRetryError) as info:
            client.ingest(IDS[:8], max_retries=4,
                          backoff_base=0.01, backoff_cap=0.1)
        # hint-seeded, doubled per consecutive rejection, capped
        assert sleeps == pytest.approx([0.04, 0.08, 0.1, 0.1])
        assert len(requests) == 5  # initial send + 4 retries
        assert info.value.attempts == 4
        assert info.value.slept == pytest.approx(sum(sleeps))
        assert isinstance(info.value.__cause__, BackpressureError)

    def test_backoff_base_floors_a_tiny_hint(self, monkeypatch):
        client, _, sleeps = self._stub_client(monkeypatch, 0.001)
        with pytest.raises(IngestRetryError):
            client.ingest(IDS[:8], max_retries=3,
                          backoff_base=0.02, backoff_cap=1.0)
        assert sleeps == pytest.approx([0.02, 0.04, 0.08])

    def test_zero_budget_raises_raw_backpressure(self, monkeypatch):
        client, requests, sleeps = self._stub_client(monkeypatch, 0.01)
        with pytest.raises(BackpressureError):
            client.ingest(IDS[:8])
        assert requests == ["ingest"] and sleeps == []

    def test_budget_exhaustion_over_the_wire(self):
        thread = ServerThread(_SlowService(_service(seed=6), delay=0.5),
                              TOKEN, queue_cap=1, connection_hwm=16,
                              retry_after=0.01)
        address = thread.start()
        with ServeClient(address, auth_token=TOKEN) as client:
            with ServeClient(address, auth_token=TOKEN) as probe:
                client.send_command("ingest", {"ids": IDS[:64]})
                time.sleep(0.1)  # the slow ingest now occupies the queue
                with pytest.raises(IngestRetryError) as info:
                    probe.ingest(IDS[64:128], max_retries=2,
                                 backoff_base=0.01, backoff_cap=0.05)
                assert isinstance(info.value.__cause__, BackpressureError)
                assert client.read_reply()[0] is True
        thread.drain()


class TestPlacementStats:
    def test_stats_expose_the_placement_plane(self):
        thread = ServerThread(_service(backend="socket", workers=2), TOKEN)
        address = thread.start()
        with ServeClient(address, auth_token=TOKEN) as client:
            client.ingest(IDS[:1024])
            stats = client.stats()
        thread.drain()
        placement = stats["placement"]
        assert placement["workers"] == 2
        assert placement["supports_scaling"] is True
        assert placement["table"] == [0, 1, 0, 1]
        assert placement["migrations"] == 0
        assert placement["migrations_in_flight"] == 0
        assert placement["autoscale"] is None

    def test_stats_report_autoscale_policy_and_growth(self):
        service = _service(backend="process", workers=1, autoscale={
            "min_workers": 1, "max_workers": 2,
            "target_load_per_worker": 2_000, "check_every": 1_024})
        thread = ServerThread(service, TOKEN)
        address = thread.start()
        with ServeClient(address, auth_token=TOKEN) as client:
            for start in range(0, 6 * 1024, 1024):
                client.ingest(IDS[start:start + 1024])
            stats = client.stats()
        thread.drain()
        placement = stats["placement"]
        assert placement["workers"] == 2
        assert placement["autoscale"]["policy"]["max_workers"] == 2
        assert placement["autoscale"]["scale_ups"] == 1
        assert placement["autoscale"]["evaluations"] > 0


# --------------------------------------------------------------------- #
# Stats and telemetry
# --------------------------------------------------------------------- #
class TestStats:

    def test_stats_shape_and_uniformity(self):
        registry = MetricsRegistry()
        thread = ServerThread(_service(seed=6), TOKEN, registry=registry)
        address = thread.start()
        with ServeClient(address, auth_token=TOKEN) as client:
            client.ingest(IDS[:4096])
            stats = client.stats()
        thread.drain()
        assert stats["backend"] == "serial"
        assert stats["shards"] == 4
        assert stats["elements"] == 4096
        assert stats["ingested"] == 4096
        assert sum(stats["shard_loads"]) == 4096
        assert stats["memory_total"] == sum(stats["memory_sizes"])
        assert stats["memory_kl_to_uniform"] >= -1e-9
        assert stats["draining"] is False
        assert stats["connections"] == 1
        telemetry = stats["telemetry"]
        assert telemetry["counters"]["serve.frames_in"] >= 2
        assert telemetry["counters"]["serve.ingested_elements"] == 4096
        assert telemetry["counters"]["serve.connections.accepted"] == 1
        assert "serve.request_seconds.ingest" in telemetry["histograms"]

    def test_drain_report_counts_restored_elements(self, tmp_path):
        state = tmp_path / "state.snap"
        thread = ServerThread(_service(seed=8), TOKEN,
                              state_file=str(state))
        address = thread.start()
        with ServeClient(address, auth_token=TOKEN) as client:
            client.ingest(IDS[:2048])
        report = thread.drain()
        assert report["elements"] == 2048
        assert report["total_elements"] == 2048

        restored = ShardedSamplingService.restore(state.read_bytes())
        thread = ServerThread(restored, TOKEN, state_file=str(state))
        address = thread.start()
        with ServeClient(address, auth_token=TOKEN) as client:
            client.ingest(IDS[2048:3072])
        report = thread.drain()
        # "elements" counts this server's ingests; "total_elements" the
        # ensemble's lifetime load carried through the snapshot
        assert report["elements"] == 1024
        assert report["total_elements"] == 3072


# --------------------------------------------------------------------- #
# Load generator
# --------------------------------------------------------------------- #
class TestLoadgen:

    def test_report_and_bench_record(self, tmp_path, monkeypatch):
        monkeypatch.setenv("BENCH_JSON_DIR", str(tmp_path))
        thread = ServerThread(_service(seed=13), TOKEN)
        address = thread.start()
        report = run_loadgen(
            address, auth_token=TOKEN, stream="zipf",
            stream_params={"population_size": 500, "alpha": 1.2},
            stream_size=8_192, connections=3, batch_size=1_024, seed=7,
            drain=True)
        thread.drain()
        assert report["elements"] == 8_192
        assert report["batches"] == 8
        assert report["elements_per_second"] > 0
        latency = report["ingest_latency"]
        assert latency["count"] == 8
        assert 0 < latency["p50_seconds"] <= latency["p95_seconds"] \
            <= latency["p99_seconds"] <= latency["max_seconds"]
        assert report["server"]["elements"] == 8_192
        assert report["drain"]["elements"] == 8_192

        record = load_record(str(tmp_path / "BENCH_serve.json"))
        assert record["name"] == "serve"
        assert record["tiers"]["loadgen"]["elements_per_second"] > 0
        # a record gates cleanly against itself
        assert compare_records(record, record) == []

    def test_cli_loadgen_json(self, capsys, tmp_path):
        token_file = tmp_path / "tok"
        token_file.write_text(TOKEN)
        thread = ServerThread(_service(seed=15), TOKEN)
        host, port = thread.start()
        main(["loadgen", "--server", f"{host}:{port}",
              "--auth-token-file", str(token_file),
              "--stream-size", "4096", "--population-size", "400",
              "--batch-size", "512", "--connections", "2", "--json"])
        thread.drain()
        report = json.loads(capsys.readouterr().out)
        assert report["elements"] == 4096
        assert report["server"]["elements"] == 4096


# --------------------------------------------------------------------- #
# CLI end-to-end: SIGTERM drain
# --------------------------------------------------------------------- #
class TestServeCli:

    def test_sigterm_drains_and_exits_zero(self, tmp_path):
        token_file = tmp_path / "tok"
        token_file.write_text(TOKEN)
        state = tmp_path / "state.snap"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(repro.__file__).resolve().parents[1])
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--listen", "127.0.0.1:0",
             "--auth-token-file", str(token_file),
             "--state-file", str(state)],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True, env=env)
        try:
            line = process.stdout.readline()
            assert line.startswith("serving on "), line
            address = line.split()[-1]
            with ServeClient(address, auth_token=TOKEN) as client:
                assert client.ingest(IDS[:1024])["count"] == 1024
            process.send_signal(signal.SIGTERM)
            stdout, stderr = process.communicate(timeout=60)
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()
        assert process.returncode == 0, stderr
        assert state.exists()
        report = json.loads(stdout)
        assert report["elements"] == 1024
        assert report["state_file"] == str(state)
