"""Edge-case and batch/scalar agreement tests for the sketch layer.

Covers the corners the vectorisation refactor could silently break: empty
sketches, degenerate 1x1 dimensions, and exact agreement between the batch
fast paths and repeated scalar calls on random streams.
"""

import numpy as np
import pytest

from repro.sketches import (
    CountMinSketch,
    CountSketch,
    ExactFrequencyCounter,
    SpaceSavingSummary,
)
from repro.utils.rng import BufferedUniforms


def _random_items(size=2_000, universe=300, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, universe, size=size).tolist()


class TestEmptySketch:
    def test_count_min_min_cell_empty(self):
        sketch = CountMinSketch(width=8, depth=3, random_state=0)
        assert sketch.min_cell() == 0
        assert sketch.min_cell_state() == (0, 0)
        assert sketch.total == 0

    def test_count_sketch_min_cell_empty(self):
        assert CountSketch(width=8, depth=3, random_state=0).min_cell() == 0

    def test_space_saving_min_cell_empty(self):
        assert SpaceSavingSummary(capacity=4).min_cell() == 0

    def test_estimate_batch_on_empty_sketch(self):
        sketch = CountMinSketch(width=8, depth=3, random_state=0)
        assert sketch.estimate_batch([1, 2, 3]).tolist() == [0, 0, 0]

    def test_update_batch_empty_input(self):
        sketch = CountMinSketch(width=8, depth=3, random_state=0)
        sketch.update_batch([])
        assert sketch.total == 0
        assert sketch.estimate_batch([]).size == 0


class TestDegenerateDimensions:
    @pytest.mark.parametrize("width,depth", [(1, 1), (1, 4), (16, 1)])
    def test_count_min_width_depth_one(self, width, depth):
        sketch = CountMinSketch(width=width, depth=depth, random_state=1)
        items = _random_items(size=500, universe=50)
        sketch.update_batch(items)
        assert sketch.total == 500
        if width == 1:
            # every item collides into the single column: the estimate is the
            # whole stream and so is the minimum non-empty cell
            assert sketch.estimate(7) == 500
            assert sketch.min_cell() == 500
        for item in range(10):
            # Count-Min never underestimates
            assert sketch.estimate(item) >= items.count(item)

    def test_count_sketch_width_depth_one(self):
        sketch = CountSketch(width=1, depth=1, random_state=2)
        for item in [3, 3, 3]:
            sketch.update(item)
        assert sketch.estimate(3) in (0, 3)  # sign may flip the single bucket
        assert sketch.min_cell() >= 1

    def test_space_saving_capacity_one(self):
        summary = SpaceSavingSummary(capacity=1)
        summary.update_batch([1, 2, 2, 3])
        assert summary.total == 4
        assert len(summary._counters) == 1


class TestBatchScalarAgreement:
    def test_count_min_estimate_batch_agrees_with_scalar(self):
        sketch = CountMinSketch(width=64, depth=4, random_state=3)
        items = _random_items(seed=3)
        sketch.update_batch(items)
        queries = _random_items(size=500, seed=4)
        batch = sketch.estimate_batch(queries)
        assert batch.tolist() == [sketch.estimate(q) for q in queries]

    def test_count_min_update_batch_agrees_with_scalar(self):
        batched = CountMinSketch(width=32, depth=5, random_state=5)
        scalar = CountMinSketch(width=32, depth=5, random_state=5)
        items = _random_items(seed=6)
        batched.update_batch(items)
        for item in items:
            scalar.update(item)
        assert np.array_equal(batched.table, scalar.table)
        assert batched.total == scalar.total
        assert batched.min_cell() == scalar.min_cell()

    def test_count_min_weighted_update_batch(self):
        batched = CountMinSketch(width=32, depth=3, random_state=7)
        scalar = CountMinSketch(width=32, depth=3, random_state=7)
        rng = np.random.default_rng(8)
        items = rng.integers(0, 100, size=400)
        counts = rng.integers(1, 9, size=400)
        batched.update_batch(items, counts=counts)
        for item, count in zip(items.tolist(), counts.tolist()):
            scalar.update(item, count)
        assert np.array_equal(batched.table, scalar.table)
        assert batched.total == scalar.total

    @pytest.mark.parametrize("depth", [3, 4], ids=["odd-depth", "even-depth"])
    def test_count_sketch_estimate_batch_agrees_with_scalar(self, depth):
        sketch = CountSketch(width=64, depth=depth, random_state=9)
        items = _random_items(seed=9)
        sketch.update_batch(items)
        queries = _random_items(size=500, seed=10)
        batch = sketch.estimate_batch(queries)
        assert batch.tolist() == [sketch.estimate(q) for q in queries]

    def test_count_sketch_update_batch_agrees_with_scalar(self):
        batched = CountSketch(width=32, depth=5, random_state=11)
        scalar = CountSketch(width=32, depth=5, random_state=11)
        items = _random_items(seed=12)
        batched.update_batch(items)
        scalar.update_many(iter(items[:16]))   # small path
        for item in items[16:]:
            scalar.update(item)
        assert np.array_equal(batched._table, scalar._table)
        assert batched.total == scalar.total

    def test_space_saving_estimate_batch_agrees_with_scalar(self):
        summary = SpaceSavingSummary(capacity=16)
        items = _random_items(universe=40, seed=13)
        summary.update_batch(items)
        queries = list(range(40))
        batch = summary.estimate_batch(queries)
        assert batch.tolist() == [summary.estimate(q) for q in queries]

    def test_space_saving_update_batch_preserves_bounds(self):
        summary = SpaceSavingSummary(capacity=8)
        items = _random_items(size=3_000, universe=20, seed=14)
        summary.update_batch(items)
        assert summary.total == len(items)
        error = summary.total / summary.capacity
        for item in set(items):
            true_frequency = items.count(item)
            estimate = summary.estimate(item)
            if estimate:   # tracked items obey the Space-Saving bracket
                assert true_frequency <= estimate <= true_frequency + error

    def test_exact_counter_batch_interface(self):
        counter = ExactFrequencyCounter()
        counter.update_batch([1, 2, 2, 3], counts=[1, 1, 1, 4])
        assert counter.estimate_batch([1, 2, 3, 9]).tolist() == [1, 2, 4, 0]

    def test_update_batch_rejects_bad_counts(self):
        sketch = CountMinSketch(width=8, depth=2, random_state=15)
        with pytest.raises(ValueError):
            sketch.update_batch([1, 2], counts=[1])
        with pytest.raises(ValueError):
            sketch.update_batch([1, 2], counts=[1, 0])
        with pytest.raises(ValueError):
            sketch.update(1, count=0)

    @pytest.mark.parametrize("factory", [
        lambda: CountMinSketch(width=8, depth=2, random_state=15),
        lambda: CountSketch(width=8, depth=2, random_state=15),
        lambda: SpaceSavingSummary(capacity=4),
        ExactFrequencyCounter,
    ], ids=["count-min", "count-sketch", "space-saving", "exact"])
    def test_update_batch_rejects_float_counts(self, factory):
        # regression: float counts were silently truncated to integers
        sketch = factory()
        with pytest.raises(TypeError):
            sketch.update_batch([1, 2, 3], counts=[1.9, 2.9, 3.9])
        assert sketch.total == 0


class TestBufferedUniforms:
    def test_next_and_take_consume_the_same_stream(self):
        one_by_one = BufferedUniforms(123, block_size=8)
        blocked = BufferedUniforms(123, block_size=8)
        expected = [one_by_one.next() for _ in range(50)]
        got = blocked.take(20) + [blocked.next()] + blocked.take(29)
        assert got == expected

    def test_block_size_does_not_change_values(self):
        small = BufferedUniforms(7, block_size=3)
        large = BufferedUniforms(7, block_size=4096)
        assert [small.next() for _ in range(40)] == \
            [large.next() for _ in range(40)]

    def test_values_in_unit_interval(self):
        stream = BufferedUniforms(0)
        assert all(0.0 <= value < 1.0 for value in stream.take(1000))

    def test_validation(self):
        with pytest.raises(ValueError):
            BufferedUniforms(0, block_size=0)
        with pytest.raises(ValueError):
            BufferedUniforms(0).take(-1)
