"""Tests for repro.utils.validation."""

import pytest

from repro.utils.validation import (
    check_in_range,
    check_non_negative,
    check_positive,
    check_probability,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        check_positive("x", 1)
        check_positive("x", 0.001)

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="x"):
            check_positive("x", 0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive("x", -3)


class TestCheckNonNegative:
    def test_accepts_zero(self):
        check_non_negative("x", 0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_non_negative("x", -0.5)


class TestCheckProbability:
    def test_accepts_interior(self):
        check_probability("p", 0.5)

    def test_endpoints_default_allowed(self):
        check_probability("p", 0.0)
        check_probability("p", 1.0)

    def test_endpoints_can_be_excluded(self):
        with pytest.raises(ValueError):
            check_probability("p", 0.0, allow_zero=False)
        with pytest.raises(ValueError):
            check_probability("p", 1.0, allow_one=False)

    def test_rejects_outside(self):
        with pytest.raises(ValueError):
            check_probability("p", 1.5)
        with pytest.raises(ValueError):
            check_probability("p", -0.1)


class TestCheckInRange:
    def test_accepts_bounds(self):
        check_in_range("x", 4, 4, 18)
        check_in_range("x", 18, 4, 18)

    def test_rejects_outside(self):
        with pytest.raises(ValueError):
            check_in_range("x", 3, 4, 18)
        with pytest.raises(ValueError):
            check_in_range("x", 19, 4, 18)
