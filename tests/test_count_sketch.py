"""Tests for repro.sketches.count_sketch."""

import numpy as np
import pytest

from repro.sketches.count_sketch import CountSketch


class TestCountSketch:
    def test_heavy_item_estimated_accurately(self):
        sketch = CountSketch(width=64, depth=5, random_state=0)
        for _ in range(500):
            sketch.update(42)
        for item in range(100):
            sketch.update(item)
        estimate = sketch.estimate(42)
        assert 450 <= estimate <= 560

    def test_estimates_are_non_negative(self):
        sketch = CountSketch(width=16, depth=5, random_state=1)
        sketch.update_many(range(50))
        for item in range(60):
            assert sketch.estimate(item) >= 0

    def test_total_tracks_updates(self):
        sketch = CountSketch(width=8, depth=3, random_state=2)
        sketch.update(1, count=4)
        sketch.update(2)
        assert sketch.total == 5
        assert len(sketch) == 5

    def test_min_cell_behaviour(self):
        sketch = CountSketch(width=8, depth=3, random_state=3)
        assert sketch.min_cell() == 0
        sketch.update(1)
        assert sketch.min_cell() >= 1

    def test_rejects_invalid_dimensions(self):
        with pytest.raises(ValueError):
            CountSketch(width=0, depth=3)
        with pytest.raises(ValueError):
            CountSketch(width=3, depth=0)

    def test_rejects_non_positive_count(self):
        with pytest.raises(ValueError):
            CountSketch(width=8, depth=3, random_state=0).update(1, count=0)

    def test_unbiasedness_on_average(self):
        # Average the estimate of a mid-frequency item over many sketches:
        # the Count sketch is unbiased, so the mean should be close to truth.
        true_count = 50
        estimates = []
        for seed in range(20):
            sketch = CountSketch(width=32, depth=5, random_state=seed)
            for _ in range(true_count):
                sketch.update(7)
            for item in range(200):
                sketch.update(item + 1000)
            estimates.append(sketch.estimate(7))
        assert abs(np.mean(estimates) - true_count) < 15
