"""Tests for repro.engine.sharded (hash-partitioned sampling ensembles)."""

import numpy as np
import pytest

from repro.core import NodeSamplingService, ReservoirSampler
from repro.engine import ShardedSamplingService, run_stream
from repro.streams import uniform_stream, zipf_stream

STREAM = zipf_stream(6_000, 800, alpha=1.4, random_state=29)


def _sharded(shards=4, seed=11, **kwargs):
    return ShardedSamplingService.knowledge_free(
        shards=shards, memory_size=10, sketch_width=32, sketch_depth=4,
        random_state=seed, **kwargs)


class TestPartitioning:
    def test_routing_is_stable_and_disjoint(self):
        service = _sharded()
        for identifier in [1, 17, 423, 799]:
            shard = service.shard_of(identifier)
            assert 0 <= shard < service.shards
            assert shard == service.shard_of(identifier)

    def test_batch_routing_matches_scalar_routing(self):
        batch_service = _sharded(seed=31)
        scalar_service = _sharded(seed=31)
        batch_outputs = batch_service.on_receive_batch(STREAM.identifiers)
        scalar_outputs = [scalar_service.on_receive(identifier)
                         for identifier in STREAM]
        assert batch_outputs.tolist() == scalar_outputs

    def test_chunked_driver_equals_single_batch(self):
        reference = _sharded(seed=37)
        chunked = _sharded(seed=37)
        expected = reference.on_receive_batch(STREAM.identifiers)
        result = run_stream(chunked, STREAM, batch_size=512)
        assert np.array_equal(expected, result.outputs)

    def test_loads_cover_whole_stream(self):
        service = _sharded()
        service.on_receive_batch(STREAM.identifiers)
        assert sum(service.shard_loads()) == STREAM.size
        assert service.elements_processed == STREAM.size
        # a universal hash over 800 identifiers should touch every shard
        assert all(load > 0 for load in service.shard_loads())

    def test_each_shard_sees_only_its_identifiers(self):
        service = _sharded()
        service.on_receive_batch(STREAM.identifiers)
        for shard, node_service in enumerate(service.services):
            for identifier in node_service.strategy.memory_view:
                assert service.shard_of(identifier) == shard


class TestSampling:
    def test_sample_returns_stream_identifier(self):
        service = _sharded()
        service.on_receive_batch(STREAM.identifiers)
        seen = set(STREAM.identifiers)
        for _ in range(50):
            assert service.sample() in seen

    def test_sample_empty_service(self):
        assert _sharded().sample() is None

    def test_sample_uniform_over_non_empty_shards(self):
        # regression: probing forward from an empty shard used to bias the
        # draw towards shards that follow runs of empty ones
        service = _sharded(seed=1)
        by_shard = {}
        for identifier in range(10_000):
            by_shard.setdefault(service.shard_of(identifier), []).append(
                identifier)
        populated = sorted(by_shard)[-2:]
        service.on_receive_batch(
            by_shard[populated[0]][:400] + by_shard[populated[1]][:400])
        counts = {shard: 0 for shard in populated}
        for _ in range(4_000):
            counts[service.shard_of(service.sample())] += 1
        for shard in populated:
            assert 1_700 <= counts[shard] <= 2_300, counts

    def test_sample_many(self):
        service = _sharded()
        service.on_receive_batch(STREAM.identifiers)
        samples = service.sample_many(100)
        assert len(samples) == 100
        with pytest.raises(ValueError):
            service.sample_many(0)

    def test_sample_many_empty_ensemble_raises(self):
        # regression: an empty ensemble used to silently return fewer than
        # `count` samples (here: none at all), skewing downstream statistics
        service = _sharded()
        with pytest.raises(RuntimeError, match="0 sample"):
            service.sample_many(10)

    def test_sample_many_empty_ensemble_non_strict(self):
        service = _sharded()
        assert service.sample_many(10, strict=False) == []
        service.on_receive_batch(STREAM.identifiers)
        assert len(service.sample_many(10, strict=False)) == 10

    def test_samples_spread_over_population(self):
        service = _sharded(shards=8, seed=3)
        stream = uniform_stream(20_000, 200, random_state=3)
        service.on_receive_batch(stream.identifiers)
        distinct = set(service.sample_many(2_000))
        # 8 shards x 10 slots hold up to 80 identifiers; samples should mix
        # across shards instead of sticking to one.
        assert len(distinct) > 30

    def test_merged_memory(self):
        service = _sharded()
        service.on_receive_batch(STREAM.identifiers)
        merged = service.merged_memory()
        assert 0 < len(merged) <= service.shards * 10
        assert set(merged) <= set(STREAM.identifiers)


class TestLifecycle:
    def test_reset(self):
        service = _sharded()
        service.on_receive_batch(STREAM.identifiers)
        service.reset()
        assert service.elements_processed == 0
        assert service.sample() is None

    def test_custom_factory_and_validation(self):
        def factory(index, rng):
            return NodeSamplingService(ReservoirSampler(5, random_state=rng))

        service = ShardedSamplingService(3, factory, random_state=7)
        service.on_receive_batch(STREAM.identifiers)
        assert service.elements_processed == STREAM.size
        with pytest.raises(ValueError):
            ShardedSamplingService(0, factory)

    def test_empty_batch(self):
        service = _sharded()
        assert service.on_receive_batch([]).size == 0

    def test_deterministic_given_seed(self):
        first = _sharded(seed=77)
        second = _sharded(seed=77)
        a = first.on_receive_batch(STREAM.identifiers)
        b = second.on_receive_batch(STREAM.identifiers)
        assert np.array_equal(a, b)
        assert first.sample_many(20) == second.sample_many(20)
