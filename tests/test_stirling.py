"""Tests for repro.analysis.stirling."""

import numpy as np
import pytest

from repro.analysis.stirling import (
    occupancy_distribution,
    stirling_recurrence_check,
    stirling_row,
    stirling_second_kind,
)


class TestStirlingNumbers:
    def test_known_values(self):
        # Classic table of S(n, k).
        assert stirling_second_kind(0, 0) == 1
        assert stirling_second_kind(1, 1) == 1
        assert stirling_second_kind(4, 2) == 7
        assert stirling_second_kind(5, 3) == 25
        assert stirling_second_kind(6, 3) == 90
        assert stirling_second_kind(7, 4) == 350

    def test_boundaries(self):
        assert stirling_second_kind(5, 0) == 0
        assert stirling_second_kind(0, 3) == 0
        assert stirling_second_kind(3, 5) == 0
        assert stirling_second_kind(6, 6) == 1

    def test_negative_arguments_rejected(self):
        with pytest.raises(ValueError):
            stirling_second_kind(-1, 2)

    def test_recurrence_relation(self):
        # Relation (3) of the paper for a grid of interior arguments.
        for n in range(2, 12):
            for k in range(1, n + 1):
                assert stirling_recurrence_check(n, k)

    def test_row_sums_are_bell_numbers(self):
        bell = [1, 1, 2, 5, 15, 52, 203, 877]
        for n, expected in enumerate(bell):
            assert sum(stirling_row(n)) == expected

    def test_recurrence_check_rejects_boundary(self):
        with pytest.raises(ValueError):
            stirling_recurrence_check(0, 1)


class TestOccupancyDistribution:
    def test_single_ball(self):
        distribution = occupancy_distribution(5, 1)
        assert distribution[1] == pytest.approx(1.0)

    def test_zero_balls(self):
        distribution = occupancy_distribution(5, 0)
        assert distribution[0] == pytest.approx(1.0)

    def test_sums_to_one(self):
        for num_urns, num_balls in [(3, 7), (10, 25), (50, 10)]:
            distribution = occupancy_distribution(num_urns, num_balls)
            assert distribution.sum() == pytest.approx(1.0)

    def test_matches_theorem6_formula(self):
        # P{N_l = i} = S(l, i) k! / (k^l (k - i)!) for small arguments.
        import math

        k, l = 6, 9
        distribution = occupancy_distribution(k, l)
        factorial = math.factorial
        for i in range(1, k + 1):
            expected = (stirling_second_kind(l, i) * factorial(k)
                        / (k ** l * factorial(k - i)))
            assert distribution[i] == pytest.approx(expected, rel=1e-9)

    def test_all_occupied_limit(self):
        # With far more balls than urns, all urns are occupied almost surely.
        distribution = occupancy_distribution(4, 200)
        assert distribution[4] == pytest.approx(1.0, abs=1e-6)

    def test_matches_monte_carlo(self):
        rng = np.random.default_rng(0)
        k, l, runs = 8, 12, 20_000
        counts = np.zeros(k + 1)
        for _ in range(runs):
            occupied = len(set(rng.integers(0, k, size=l).tolist()))
            counts[occupied] += 1
        empirical = counts / runs
        exact = occupancy_distribution(k, l)
        assert np.max(np.abs(empirical - exact)) < 0.02

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            occupancy_distribution(0, 5)
        with pytest.raises(ValueError):
            occupancy_distribution(5, -1)
