"""Tests for repro.sketches.misra_gries (Misra-Gries and Space-Saving)."""

import numpy as np
import pytest

from repro.sketches.misra_gries import MisraGriesSummary, SpaceSavingSummary


class TestMisraGries:
    def test_underestimates_within_bound(self):
        summary = MisraGriesSummary(capacity=10)
        rng = np.random.default_rng(0)
        items = rng.integers(0, 50, size=2_000)
        true_counts = {}
        for item in items:
            item = int(item)
            true_counts[item] = true_counts.get(item, 0) + 1
            summary.update(item)
        bound = len(items) / (summary.capacity + 1)
        for item, count in true_counts.items():
            estimate = summary.estimate(item)
            assert estimate <= count
            assert estimate >= count - bound

    def test_tracks_heavy_hitter(self):
        summary = MisraGriesSummary(capacity=5)
        for _ in range(600):
            summary.update(1)
        for item in range(2, 200):
            summary.update(item)
        hitters = summary.heavy_hitters(0.5)
        assert 1 in hitters

    def test_capacity_respected(self):
        summary = MisraGriesSummary(capacity=3)
        summary.update_many(range(100))
        assert len(summary._counters) <= 3

    def test_heavy_hitters_threshold_validation(self):
        summary = MisraGriesSummary(capacity=3)
        summary.update(1)
        with pytest.raises(ValueError):
            summary.heavy_hitters(0.0)

    def test_min_cell(self):
        summary = MisraGriesSummary(capacity=4)
        assert summary.min_cell() == 0
        summary.update(1, count=3)
        summary.update(2, count=7)
        assert summary.min_cell() == 3

    def test_rejects_invalid_arguments(self):
        with pytest.raises(ValueError):
            MisraGriesSummary(capacity=0)
        with pytest.raises(ValueError):
            MisraGriesSummary(capacity=2).update(1, count=0)

    def test_bulk_count_decrement(self):
        summary = MisraGriesSummary(capacity=2)
        summary.update(1, count=5)
        summary.update(2, count=5)
        summary.update(3, count=2)
        assert summary.total == 12
        assert summary.estimate(1) <= 5


class TestSpaceSaving:
    def test_overestimates_within_bound(self):
        summary = SpaceSavingSummary(capacity=20)
        rng = np.random.default_rng(1)
        items = rng.integers(0, 60, size=2_000)
        true_counts = {}
        for item in items:
            item = int(item)
            true_counts[item] = true_counts.get(item, 0) + 1
            summary.update(item)
        bound = len(items) / summary.capacity
        for item, count in true_counts.items():
            estimate = summary.estimate(item)
            if estimate > 0:
                assert estimate <= count + bound

    def test_heavy_item_never_lost(self):
        summary = SpaceSavingSummary(capacity=5)
        for _ in range(500):
            summary.update(99)
        for item in range(100):
            summary.update(item)
        assert summary.estimate(99) >= 500

    def test_capacity_respected(self):
        summary = SpaceSavingSummary(capacity=4)
        summary.update_many(range(50))
        assert len(summary._counters) <= 4

    def test_min_cell_and_total(self):
        summary = SpaceSavingSummary(capacity=4)
        assert summary.min_cell() == 0
        summary.update_many([1, 1, 2])
        assert summary.min_cell() == 1
        assert summary.total == 3

    def test_rejects_invalid_arguments(self):
        with pytest.raises(ValueError):
            SpaceSavingSummary(capacity=0)
        with pytest.raises(ValueError):
            SpaceSavingSummary(capacity=2).update(1, count=-2)
