"""Tests for repro.experiments.figures (scaled-down figure/table drivers)."""

import pytest

from repro.experiments import figures


class TestAnalyticalFigures:
    def test_figure3_structure_and_monotonicity(self):
        series = figures.figure3(k_values=(10, 50, 100), s=10,
                                 etas=(0.5, 1e-2))
        assert len(series) == 2
        for points in series.values():
            ks = [x for x, _ in points]
            efforts = [y for _, y in points]
            assert ks == sorted(ks)
            assert efforts == sorted(efforts)  # L_{k,s} grows with k

    def test_figure3_eta_ordering(self):
        series = figures.figure3(k_values=(50,), s=10, etas=(0.5, 1e-4))
        effort_easy = series["s=10 | eta_T=0.5"][0][1]
        effort_hard = series["s=10 | eta_T=0.0001"][0][1]
        assert effort_hard > effort_easy

    def test_figure4_structure(self):
        series = figures.figure4(k_values=(10, 50), etas=(1e-1, 1e-4))
        assert len(series) == 2
        for points in series.values():
            assert [y for _, y in points] == sorted(y for _, y in points)

    def test_table1_matches_paper_values(self):
        rows = figures.table1()
        for row in rows:
            # The k=250 rows (and one boundary case at k=50) differ from the
            # published table by a unit or two; require exact agreement up to
            # a one-unit rounding difference for the small-k settings.
            if row["L_ks (paper)"] != "" and row["k"] < 100:
                assert abs(row["L_ks (computed)"] - row["L_ks (paper)"]) <= 1
            if row["E_k (paper)"] != "" and row["k"] < 100:
                assert abs(row["E_k (computed)"] - row["E_k (paper)"]) <= 1


class TestTraceFigures:
    def test_table2_rows(self):
        rows = figures.table2(scale=0.01)
        assert [row["trace"] for row in rows] == ["NASA", "ClarkNet",
                                                  "Saskatchewan"]
        for row in rows:
            assert row["size (paper)"] > row["size (synthetic)"]

    def test_figure5_zipf_decay(self):
        series = figures.figure5(scale=0.01, num_points=10)
        assert set(series) == {"NASA", "ClarkNet", "Saskatchewan"}
        for points in series.values():
            frequencies = [y for _, y in points]
            assert frequencies[0] >= frequencies[-1]
            assert frequencies[0] > 10 * frequencies[-1]

    def test_figure12_ordering(self):
        rows = figures.figure12(scale=0.003, trials=1, random_state=0)
        assert len(rows) == 3
        for row in rows:
            # The samplers reduce the divergence of the biased trace.  At this
            # tiny scale the 0.01n memory is only a handful of entries, so the
            # requirement is on the omniscient strategy and on the larger of
            # the two knowledge-free sizings.
            best_kf = min(row["knowledge-free c=k=log n"],
                          row["knowledge-free c=k=0.01n"])
            assert best_kf <= row["input"] + 1e-9
            assert row["omniscient"] <= row["input"] + 1e-9


class TestSimulationFigures:
    def test_figure6_checkpoints(self):
        result = figures.figure6(stream_size=4_000, population_size=200,
                                 memory_size=10, sketch_width=10,
                                 sketch_depth=5, num_checkpoints=3,
                                 random_state=0)
        assert len(result["checkpoints"]) == 3
        for key in ("input", "knowledge-free", "omniscient"):
            assert len(result[key]["max_frequency"]) == 3
            assert len(result[key]["distinct"]) == 3
        # The samplers flatten the peak relative to the raw input.
        assert result["omniscient"]["max_frequency"][-1] < \
            result["input"]["max_frequency"][-1]

    def test_figure7a_profile(self):
        result = figures.figure7a(stream_size=10_000, population_size=200,
                                  random_state=1)
        assert result["omniscient"]["max"] < result["input"]["max"]
        assert result["knowledge-free"]["max"] < result["input"]["max"]
        assert result["omniscient_divergence"] < result["input_divergence"]

    def test_figure7b_profile(self):
        result = figures.figure7b(stream_size=10_000, population_size=200,
                                  random_state=2)
        assert result["knowledge_free_divergence"] < result["input_divergence"]

    def test_figure8_gain_levels(self):
        series = figures.figure8(population_sizes=(50, 200),
                                 stream_size=10_000, trials=1, random_state=3)
        for name, points in series.items():
            for _, gain in points:
                assert gain > 0.8, f"{name} gain too low"

    def test_figure9_gain_levels(self):
        series = figures.figure9(stream_sizes=(5_000, 20_000),
                                 population_size=200, trials=1,
                                 random_state=4)
        for points in series.values():
            for _, gain in points:
                assert gain > 0.7

    def test_figure10a_memory_masks_attack(self):
        series = figures.figure10a(memory_sizes=(5, 100),
                                   stream_size=10_000, population_size=200,
                                   trials=1, random_state=5)
        kf = dict(series["knowledge-free"])
        assert kf[100.0] >= kf[5.0] - 0.05

    def test_figure10b_memory_masks_attack(self):
        series = figures.figure10b(memory_sizes=(5, 100),
                                   stream_size=10_000, population_size=200,
                                   trials=1, random_state=6)
        kf = dict(series["knowledge-free"])
        assert kf[100.0] > kf[5.0]

    def test_figure11_degrades_with_malicious_count(self):
        series = figures.figure11(malicious_counts=(10, 200),
                                  stream_size=10_000, population_size=200,
                                  memory_size=20, sketch_width=20,
                                  sketch_depth=5, trials=1, random_state=7)
        points = dict(series["knowledge-free"])
        assert points[200.0] < points[10.0]
