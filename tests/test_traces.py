"""Tests for repro.streams.traces (Table II stand-ins)."""

import pytest

from repro.streams.traces import (
    CLARKNET,
    NASA,
    PAPER_TRACES,
    SASKATCHEWAN,
    SyntheticTrace,
    TraceSpec,
    load_paper_traces,
    paper_trace_table,
)


class TestTraceSpecs:
    def test_published_statistics(self):
        assert NASA.stream_size == 1_891_715
        assert NASA.distinct_ids == 81_983
        assert NASA.max_frequency == 17_572
        assert CLARKNET.distinct_ids == 94_787
        assert SASKATCHEWAN.max_frequency == 52_695
        assert len(PAPER_TRACES) == 3

    def test_paper_trace_table_rows(self):
        rows = paper_trace_table()
        assert [row["trace"] for row in rows] == [
            "NASA", "ClarkNet", "Saskatchewan"]
        assert rows[0]["size"] == NASA.stream_size


class TestSyntheticTrace:
    def test_full_scale_statistics_match(self):
        trace = SyntheticTrace(NASA)
        stats = trace.statistics()
        assert stats["size"] == NASA.stream_size
        assert stats["distinct"] == NASA.distinct_ids
        # The max frequency is the fitted quantity; allow a small tolerance.
        assert abs(stats["max_frequency"] - NASA.max_frequency) \
            <= 0.05 * NASA.max_frequency

    def test_scaled_trace_preserves_shape(self):
        trace = SyntheticTrace(CLARKNET, scale=0.01)
        stats = trace.statistics()
        assert stats["distinct"] == pytest.approx(
            CLARKNET.distinct_ids * 0.01, rel=0.02)
        frequencies = sorted(trace.frequencies().values(), reverse=True)
        # Zipf-like decay: top frequency well above the median frequency.
        assert frequencies[0] > 10 * frequencies[len(frequencies) // 2]

    def test_every_identifier_appears(self):
        trace = SyntheticTrace(NASA, scale=0.005)
        assert min(trace.frequencies().values()) >= 1

    def test_materialise_matches_frequencies(self):
        trace = SyntheticTrace(CLARKNET, scale=0.002, random_state=0)
        stream = trace.materialise()
        assert stream.frequencies() == trace.frequencies()

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            SyntheticTrace(NASA, scale=0.0)
        with pytest.raises(ValueError):
            SyntheticTrace(NASA, scale=1.5)

    def test_custom_spec(self):
        spec = TraceSpec(name="tiny", stream_size=1_000, distinct_ids=100,
                         max_frequency=200)
        trace = SyntheticTrace(spec)
        stats = trace.statistics()
        assert stats["size"] == 1_000
        assert stats["distinct"] == 100
        assert abs(stats["max_frequency"] - 200) <= 40

    def test_load_paper_traces(self):
        traces = load_paper_traces(scale=0.001)
        assert len(traces) == 3
        assert {trace.spec.name for trace in traces} == {
            "NASA", "ClarkNet", "Saskatchewan"}
