"""Tests for the zero-copy shared-memory transport (repro.engine.backends.shm).

The guarantees under test: the process backend's ``"shm"`` transport stages
chunk payloads into per-worker shared-memory rings and is bit-identical to
both the ``"pickle"`` transport and the serial backend per master seed; the
fallback matrix (no shared memory on the host, sub-chunks below the cutoff,
payloads that outgrow a slot, protocol desync) always lands on a correct
pickle path; and every ring segment is unlinked from ``/dev/shm`` on every
exit path — clean close, worker crash, startup failure and ``kill -9``.
"""

import os
from pathlib import Path

import numpy as np
import pytest

from repro import telemetry
from repro.engine import (
    ShardedSamplingService,
    WorkerCrashError,
    make_backend,
)
from repro.engine.backends import shm as shm_module
from repro.engine.backends.process import RING_NAME_PREFIX, ProcessBackend
from repro.engine.backends.serial import SerialBackend
from repro.engine.backends.shm import (
    MIN_SHM_BYTES,
    ShmRing,
    ShmRingView,
    packed_size,
    shared_memory_available,
)
from repro.engine.sharded import KnowledgeFreeShardFactory
from repro.scenarios.spec import EngineSpec
from repro.streams import zipf_stream
from repro.utils.rng import spawn_children

pytestmark = pytest.mark.skipif(
    not shared_memory_available(),
    reason="multiprocessing.shared_memory unavailable on this host")

STREAM = zipf_stream(8_000, 1_000, alpha=1.3, random_state=17)
IDS = np.asarray(STREAM.identifiers, dtype=np.int64)

SHM_DIR = Path("/dev/shm")


def _ring_segments():
    """Names of this process's ring segments still present in /dev/shm."""
    if not SHM_DIR.is_dir():
        pytest.skip("host exposes no /dev/shm to inspect")
    prefix = f"{RING_NAME_PREFIX}-{os.getpid()}-"
    return sorted(path.name for path in SHM_DIR.iterdir()
                  if path.name.startswith(prefix))


def _service(backend="process", seed=23, shards=4, **kwargs):
    return ShardedSamplingService.knowledge_free(
        shards=shards, memory_size=10, sketch_width=32, sketch_depth=4,
        random_state=seed, backend=backend, **kwargs)


def _factory():
    return KnowledgeFreeShardFactory(10, sketch_width=32, sketch_depth=4)


def _direct_backends(**process_kwargs):
    """A serial reference and a process backend built from the same seeds."""
    serial = SerialBackend(4, _factory(), spawn_children(23, 4))
    process = ProcessBackend(4, _factory(), spawn_children(23, 4),
                             workers=2, **process_kwargs)
    return serial, process


# --------------------------------------------------------------------- #
# The ring itself
# --------------------------------------------------------------------- #
class TestShmRing:
    def test_stage_and_read_roundtrip(self):
        ring = ShmRing(slots=2, slot_bytes=4096)
        try:
            arrays = {0: np.arange(10, dtype=np.int64),
                      2: np.arange(100, 117, dtype=np.int64)}
            header = ring.try_stage(arrays)
            assert header is not None
            assert sorted(shard for shard, _, _ in header["entries"]) == [0, 2]
            view = ShmRingView(*ring.spec())
            try:
                seen = view.read_in(header["slot"], header["entries"],
                                    header["dtype"])
                for shard, array in arrays.items():
                    assert np.array_equal(seen[shard], array)
                replies = {shard: array * 2 for shard, array in seen.items()}
                entries = view.try_write_out(header["slot"], replies)
                assert entries is not None
                out = ring.read_out(header["slot"], entries)
                for shard, array in arrays.items():
                    assert np.array_equal(out[shard], array * 2)
            finally:
                view.close()
        finally:
            ring.destroy()

    def test_wrap_around_cycles_every_slot(self):
        """Stage/release past the ring size revisits slots FIFO."""
        ring = ShmRing(slots=3, slot_bytes=1024)
        try:
            slots = []
            for _ in range(8):
                header = ring.try_stage({0: np.arange(4, dtype=np.int64)})
                slots.append(header["slot"])
                ring.release(header["slot"])
            assert slots == [0, 1, 2, 0, 1, 2, 0, 1]
        finally:
            ring.destroy()

    def test_stage_fails_closed_when_exhausted_or_oversized(self):
        ring = ShmRing(slots=1, slot_bytes=128)
        try:
            good = {0: np.arange(4, dtype=np.int64)}
            assert ring.try_stage({0: np.arange(64, dtype=np.int64)}) is None
            header = ring.try_stage(good)
            assert header is not None
            assert ring.try_stage(good) is None  # no free slot
            ring.release(header["slot"])
            assert ring.try_stage(good) is not None
            # mixed dtypes stay on the pickle path
            ring.release(0)
            assert ring.try_stage({0: np.arange(2, dtype=np.int64),
                                   1: np.arange(2, dtype=np.int32)}) is None
        finally:
            ring.destroy()

    def test_release_validates_and_is_idempotent(self):
        ring = ShmRing(slots=2, slot_bytes=128)
        try:
            with pytest.raises(ValueError, match="out of range"):
                ring.release(2)
            header = ring.try_stage({0: np.arange(2, dtype=np.int64)})
            ring.release(header["slot"])
            ring.release(header["slot"])  # double release is a no-op
            assert ring.free_slots == 2
        finally:
            ring.destroy()

    def test_geometry_validation(self):
        with pytest.raises(ValueError, match="slots must be positive"):
            ShmRing(slots=0)
        with pytest.raises(ValueError, match="slot_bytes must be at least"):
            ShmRing(slot_bytes=8)

    def test_packed_size_is_alignment_aware(self):
        a = np.arange(3, dtype=np.int64)   # 24 bytes -> padded to 64
        b = np.arange(2, dtype=np.int64)   # 16 bytes
        assert packed_size([a]) == 24
        assert packed_size([a, b]) == 64 + 16

    def test_destroy_unlinks_the_segment_and_is_idempotent(self):
        ring = ShmRing(slots=1, slot_bytes=128,
                       name=f"{RING_NAME_PREFIX}-{os.getpid()}-t-deadbeef")
        assert _ring_segments() == [ring.name]
        ring.destroy()
        assert _ring_segments() == []
        ring.destroy()  # second destroy must not raise
        assert ring.try_stage({0: np.arange(2, dtype=np.int64)}) is None


# --------------------------------------------------------------------- #
# Transport parity and the fallback matrix
# --------------------------------------------------------------------- #
class TestTransportParity:
    @pytest.mark.parametrize("transport", ["shm", "pickle"])
    def test_bit_identical_to_serial(self, transport):
        reference = _service("serial")
        expected = reference.on_receive_batch(IDS)
        expected_memory = reference.merged_memory()
        expected_samples = reference.sample_many(50)
        expected_loads = reference.shard_loads()
        with _service(workers=2, transport=transport) as service:
            assert service.backend.transport == transport
            outputs = service.on_receive_batch(IDS)
            assert np.array_equal(outputs, expected)
            assert service.merged_memory() == expected_memory
            assert service.sample_many(50) == expected_samples
            assert service.shard_loads() == expected_loads

    def test_shm_is_the_default_transport(self):
        with _service(workers=2) as service:
            assert service.backend.transport == "shm"
            assert _ring_segments() != []
        assert _ring_segments() == []

    def test_host_without_shared_memory_falls_back(self, monkeypatch):
        monkeypatch.setattr(shm_module, "shared_memory_available",
                            lambda: False)
        reference = _service("serial")
        expected = reference.on_receive_batch(IDS[:4096])
        with _service(workers=2, transport="shm") as service:
            assert service.backend.transport == "pickle"
            assert _ring_segments() == []
            assert np.array_equal(service.on_receive_batch(IDS[:4096]),
                                  expected)

    def test_small_chunks_take_the_pickle_cutoff(self):
        """Sub-chunks under MIN_SHM_BYTES skip the ring — and still match."""
        small, large = IDS[:128], IDS[128:4096]
        reference = _service("serial")
        expected = [reference.on_receive_batch(small),
                    reference.on_receive_batch(large)]
        with telemetry.enabled() as registry:
            with _service(workers=2, transport="shm") as service:
                outputs = [service.on_receive_batch(small)]
                counters = registry.snapshot()["counters"]
                assert counters["backend.process.shm_fallbacks"] >= 2
                assert "backend.process.shm_bytes_sent" not in counters
                outputs.append(service.on_receive_batch(large))
            counters = registry.snapshot()["counters"]
        assert counters["backend.process.shm_bytes_sent"] >= \
            2 * MIN_SHM_BYTES
        assert counters["backend.process.shm_bytes_received"] > 0
        for ours, want in zip(outputs, expected):
            assert np.array_equal(ours, want)

    def test_oversized_payload_falls_back_per_dispatch(self):
        """A payload larger than a slot transparently rides the pipe."""
        ids = IDS[:8192]
        shard_indices = (ids % 4).astype(np.int64)
        serial, process = _direct_backends(transport="shm", slot_bytes=64)
        try:
            expected = serial.dispatch(ids, shard_indices)
            with telemetry.enabled() as registry:
                outputs = process.dispatch(ids, shard_indices)
                counters = registry.snapshot()["counters"]
            assert np.array_equal(outputs, expected)
            assert counters["backend.process.shm_fallbacks"] >= 2
            assert "backend.process.shm_bytes_sent" not in counters
        finally:
            process.close()
        assert _ring_segments() == []

    def test_constructor_and_resolver_validation(self):
        with pytest.raises(ValueError, match="unknown transport"):
            ProcessBackend(4, _factory(), spawn_children(23, 4),
                           workers=2, transport="carrier-pigeon")
        with pytest.raises(ValueError, match="ring_slots must be positive"):
            ProcessBackend(4, _factory(), spawn_children(23, 4),
                           workers=2, ring_slots=0)
        with pytest.raises(ValueError, match="transport"):
            make_backend("serial", 4, _factory(), spawn_children(23, 4),
                         transport="shm")
        with pytest.raises(ValueError, match="ring_slots"):
            make_backend("serial", 4, _factory(), spawn_children(23, 4),
                         ring_slots=2)

    def test_engine_spec_validation(self):
        spec = EngineSpec(shards=4, backend="process", transport="shm",
                          ring_slots=2)
        assert spec.transport == "shm"
        with pytest.raises(ValueError, match="transport"):
            EngineSpec(shards=4, backend="serial", transport="shm")
        with pytest.raises(ValueError, match="transport"):
            EngineSpec(shards=4, backend="process", transport="bogus")
        with pytest.raises(ValueError, match="ring_slots"):
            EngineSpec(shards=4, backend="serial", ring_slots=2)


# --------------------------------------------------------------------- #
# Worker-side helpers (module-level so worker processes can ship them)
# --------------------------------------------------------------------- #
class _SuicidalService:
    """Shard service that hard-kills its worker process on every batch."""

    elements_processed = 0

    def on_receive_batch(self, identifiers):
        os._exit(17)


def _suicidal_factory(index, rng):
    return _SuicidalService()


def _broken_on_shard_one_factory(index, rng):
    if index == 1:
        raise RuntimeError("shard 1 construction boom")
    return _SuicidalService()


# --------------------------------------------------------------------- #
# Segment lifecycle on every exit path
# --------------------------------------------------------------------- #
class TestSegmentLifecycle:
    def test_clean_close_unlinks_every_ring(self):
        with _service(workers=2, transport="shm") as service:
            service.on_receive_batch(IDS[:4096])
            assert len(_ring_segments()) == 2  # one ring per worker
        assert _ring_segments() == []

    def test_close_with_an_inflight_dispatch_unlinks(self):
        """close() drains the pipeline, releases slots and unlinks."""
        service = _service(workers=2, transport="shm")
        handle = service.begin_batch(IDS[:4096])
        assert handle[1] == 4096
        service.close()
        assert _ring_segments() == []

    def test_worker_crash_leaves_no_segments(self):
        backend = ProcessBackend(4, _suicidal_factory, spawn_children(23, 4),
                                 workers=2, transport="shm")
        try:
            assert _ring_segments() != []
            ids = IDS[:4096]
            with pytest.raises(WorkerCrashError):
                backend.dispatch(ids, (ids % 4).astype(np.int64))
        finally:
            backend.close()
        assert _ring_segments() == []

    def test_startup_failure_leaves_no_segments(self):
        with pytest.raises(WorkerCrashError, match="construction boom"):
            ProcessBackend(4, _broken_on_shard_one_factory,
                           spawn_children(23, 4), workers=2, transport="shm")
        assert _ring_segments() == []

    def test_kill_nine_leaves_no_segments(self):
        service = _service(workers=2, transport="shm")
        try:
            service.on_receive_batch(IDS[:2048])
            service.backend._processes[0].kill()
            with pytest.raises(WorkerCrashError):
                service.on_receive_batch(IDS[2048:6144])
        finally:
            service.close()
        assert _ring_segments() == []

    def test_autoscale_worker_retirement_unlinks_its_ring(self):
        """remove_worker must retire the worker's ring with the worker."""
        with _service(workers=1, transport="shm") as service:
            service.on_receive_batch(IDS[:2048])
            added = service.add_worker()
            assert len(_ring_segments()) == 2
            service.remove_worker(added)
            assert len(_ring_segments()) == 1
            # the survivor still serves traffic over its ring
            service.on_receive_batch(IDS[2048:4096])
        assert _ring_segments() == []


# --------------------------------------------------------------------- #
# Protocol desync fails closed
# --------------------------------------------------------------------- #
class TestSeqProtocol:
    def test_mismatched_reply_header_poisons_the_backend(self):
        service = _service(workers=2, transport="shm")
        try:
            handle = service.begin_batch(IDS[:4096])
            ticket = handle[0]
            assert ticket.transport_state  # at least one worker staged
            ticket.seq += 1  # simulate a desynchronised reply
            with pytest.raises(WorkerCrashError, match="mismatched header"):
                service.finish_batch(handle)
            with pytest.raises(WorkerCrashError, match="build a new service"):
                service.on_receive_batch(IDS[:64])
        finally:
            service.close()
        assert _ring_segments() == []
