"""Tests for repro.core.service (NodeSamplingService facade)."""

import pytest

from repro.core.baselines import ReservoirSampler
from repro.core.service import NodeSamplingService
from repro.streams import StreamOracle, uniform_stream


class TestNodeSamplingService:
    def test_knowledge_free_constructor(self):
        service = NodeSamplingService.knowledge_free(memory_size=5,
                                                     sketch_width=8,
                                                     sketch_depth=3,
                                                     random_state=0)
        assert service.strategy.name == "knowledge-free"

    def test_omniscient_constructor(self):
        oracle = StreamOracle.uniform(10)
        service = NodeSamplingService.omniscient(oracle, memory_size=5,
                                                 random_state=0)
        assert service.strategy.name == "omniscient"

    def test_on_receive_records_output(self):
        service = NodeSamplingService.knowledge_free(memory_size=3,
                                                     random_state=1)
        for identifier in [1, 2, 3, 4]:
            output = service.on_receive(identifier)
            assert output is not None
        assert service.output_stream.size == 4
        assert service.elements_processed == 4

    def test_consume_stream(self):
        stream = uniform_stream(200, 20, random_state=2)
        service = NodeSamplingService.knowledge_free(memory_size=5,
                                                     random_state=2)
        service.consume(stream)
        assert service.output_stream.size == 200
        assert sum(service.output_frequencies().values()) == 200

    def test_sample_primitive(self):
        service = NodeSamplingService.knowledge_free(memory_size=5,
                                                     random_state=3)
        assert service.sample() is None
        service.consume([1, 2, 3])
        assert service.sample() in {1, 2, 3}

    def test_sample_many(self):
        service = NodeSamplingService.knowledge_free(memory_size=5,
                                                     random_state=4)
        service.consume([1, 2, 3])
        samples = service.sample_many(10)
        assert len(samples) == 10
        assert set(samples) <= {1, 2, 3}

    def test_sample_many_rejects_non_positive(self):
        service = NodeSamplingService.knowledge_free(memory_size=5)
        with pytest.raises(ValueError):
            service.sample_many(0)

    def test_sample_many_empty_service_raises_unless_lenient(self):
        service = NodeSamplingService.knowledge_free(memory_size=5)
        with pytest.raises(RuntimeError, match="0 sample"):
            service.sample_many(3)
        assert service.sample_many(3, strict=False) == []

    def test_record_output_disabled(self):
        service = NodeSamplingService.knowledge_free(memory_size=3,
                                                     random_state=5,
                                                     record_output=False)
        service.consume([1, 2, 3, 4, 5])
        assert service.output_stream.size == 0
        assert service.elements_processed == 5

    def test_custom_strategy(self):
        service = NodeSamplingService(ReservoirSampler(4, random_state=6))
        service.consume(range(20))
        assert service.strategy.name == "reservoir"
        assert service.output_stream.size == 20

    def test_reset(self):
        service = NodeSamplingService.knowledge_free(memory_size=3,
                                                     random_state=7)
        service.consume([1, 2, 3])
        service.reset()
        assert service.elements_processed == 0
        assert service.output_stream.size == 0
        assert service.sample() is None
