"""Tests for scenario sweeps and churn sections (spec + runner layers)."""

import pytest

from repro.scenarios import (
    ChurnSpec,
    ScenarioError,
    ScenarioRunner,
    ScenarioSpec,
    SweepSpec,
    run_scenario,
    run_sweep,
)


def sweep_spec(**overrides):
    """A fast stream-mode sweep used throughout the module."""
    data = {
        "name": "unit-sweep",
        "seed": 17,
        "trials": 2,
        "stream": {"kind": "zipf",
                   "params": {"stream_size": 2000, "population_size": 100,
                              "alpha": 4}},
        "strategies": [
            {"kind": "knowledge-free",
             "params": {"memory_size": 8, "sketch_width": 16,
                        "sketch_depth": 4}},
        ],
        "sweep": {"parameter": "stream.params.population_size",
                  "values": [50, 100, 200]},
    }
    data.update(overrides)
    return ScenarioSpec.from_dict(data)


def churn_spec(**overrides):
    """A fast stream-mode churn scenario."""
    data = {
        "name": "unit-churn",
        "seed": 6,
        "trials": 2,
        "churn": {"initial_population": 40, "churn_steps": 120,
                  "stable_steps": 150, "join_rate": 0.3, "leave_rate": 0.3,
                  "advertisements_per_step": 4},
        "strategies": [
            {"kind": "knowledge-free",
             "params": {"memory_size": 8, "sketch_width": 16,
                        "sketch_depth": 4}},
        ],
    }
    data.update(overrides)
    return ScenarioSpec.from_dict(data)


def network_churn_spec(**overrides):
    data = {
        "name": "unit-net-churn",
        "seed": 4,
        "trials": 1,
        "network": {"num_correct": 12, "num_malicious": 2, "rounds": 10,
                    "memory_size": 5, "sketch_width": 8, "sketch_depth": 3},
        "churn": {"churn_steps": 8, "stable_steps": 8,
                  "join_rate": 0.4, "leave_rate": 0.3},
        "metrics": {"collect": ["gain", "divergence", "malicious_fraction"]},
    }
    data.update(overrides)
    return ScenarioSpec.from_dict(data)


class TestSweepSpec:
    def test_json_round_trip_is_lossless(self):
        spec = sweep_spec()
        assert ScenarioSpec.from_json(spec.to_json()) == spec
        assert ScenarioSpec.from_dict(spec.to_dict()).to_dict() == spec.to_dict()

    def test_unknown_sweep_key_rejected(self):
        data = sweep_spec().to_dict()
        data["sweep"]["step"] = 10
        with pytest.raises(ScenarioError, match="unknown key"):
            ScenarioSpec.from_dict(data)

    def test_empty_values_rejected(self):
        with pytest.raises(ScenarioError, match="must not be empty"):
            SweepSpec(parameter="stream.params.alpha", values=[])

    def test_reserved_axes_rejected(self):
        for parameter in ("seed", "name", "sweep.values"):
            with pytest.raises(ScenarioError, match="must not address"):
                SweepSpec(parameter=parameter, values=[1])

    def test_label_defaults_to_last_segment(self):
        assert SweepSpec(parameter="network.num_malicious",
                         values=[1]).label == "num_malicious"

    def test_trials_override_serializes(self):
        spec = sweep_spec(sweep={"parameter": "stream.params.alpha",
                                 "values": [2, 4], "trials": 5})
        rebuilt = ScenarioSpec.from_json(spec.to_json())
        assert rebuilt.sweep.trials == 5


class TestAxisResolution:
    def test_missing_section_reported(self):
        spec = sweep_spec(sweep={"parameter": "churn.join_rate",
                                 "values": [0.1]})
        with pytest.raises(ScenarioError, match="'churn' is not present"):
            ScenarioRunner(spec).validate()

    def test_bad_list_index_reported(self):
        spec = sweep_spec(sweep={"parameter": "strategies.3.params.memory_size",
                                 "values": [4]})
        with pytest.raises(ScenarioError, match="out of range"):
            ScenarioRunner(spec).validate()

    def test_non_numeric_list_segment_reported(self):
        spec = sweep_spec(sweep={"parameter": "strategies.kf.params.memory_size",
                                 "values": [4]})
        with pytest.raises(ScenarioError, match="not a list index"):
            ScenarioRunner(spec).validate()

    def test_descending_into_scalar_reported(self):
        spec = sweep_spec(sweep={"parameter": "trials.nested", "values": [1]})
        with pytest.raises(ScenarioError, match="cannot descend"):
            ScenarioRunner(spec).validate()

    def test_bad_spec_level_value_fails_before_any_point_runs(self):
        # values that break spec-level validation (here: a negative trial
        # count) are rejected up front by run_sweep, not after the earlier
        # points have already burned their trials
        spec = sweep_spec(sweep={"parameter": "trials", "values": [3, -1]})
        with pytest.raises(ValueError):
            ScenarioRunner(spec).validate()
        with pytest.raises(ValueError):
            run_sweep(spec)

    def test_out_of_domain_value_fails_at_the_bad_point(self):
        # axis *paths* fail in validate(); out-of-domain *values* fail when
        # the point's component is built, wrapped as a ScenarioError
        spec = sweep_spec(sweep={"parameter": "stream.params.population_size",
                                 "values": [100, -5]})
        with pytest.raises(ScenarioError, match="building stream"):
            run_sweep(spec)

    def test_wildcard_addresses_every_strategy(self):
        spec = sweep_spec(strategies=[
            {"kind": "knowledge-free", "params": {"memory_size": 8}},
            {"kind": "omniscient", "params": {"memory_size": 8}},
        ], sweep={"parameter": "strategies.*.params.memory_size",
                  "values": [4]})
        point = ScenarioRunner(spec).point_spec(4)
        assert all(strategy.params["memory_size"] == 4
                   for strategy in point.strategies)

    def test_point_spec_names_and_drops_sweep(self):
        point = ScenarioRunner(sweep_spec()).point_spec(50)
        assert point.sweep is None
        assert point.name == "unit-sweep[population_size=50]"

    def test_creating_defaulted_leaf_parameter(self):
        # peak_fraction is not in the template params; the final dict segment
        # may be created so defaulted builder parameters are sweepable.
        spec = sweep_spec(
            stream={"kind": "peak-attack",
                    "params": {"stream_size": 2000, "population_size": 100}},
            sweep={"parameter": "stream.params.peak_fraction",
                   "values": [0.3, 0.6]})
        point = ScenarioRunner(spec).point_spec(0.3)
        assert point.stream.params["peak_fraction"] == 0.3


class TestSweepExecution:
    def test_run_refuses_sweep_and_run_sweep_refuses_plain(self):
        with pytest.raises(ScenarioError, match="use run_sweep"):
            run_scenario(sweep_spec())
        with pytest.raises(ScenarioError, match="no sweep section"):
            run_sweep(churn_spec())

    def test_serialized_rerun_is_bit_identical(self):
        spec = sweep_spec()
        first = run_sweep(spec)
        second = run_sweep(ScenarioSpec.from_json(spec.to_json()))
        assert first.to_dict() == second.to_dict()

    def test_points_follow_axis(self):
        result = run_sweep(sweep_spec())
        assert [point.value for point in result.points] == [50, 100, 200]
        for point in result.points:
            assert point.result.summaries[0]["strategy"] == "knowledge-free"

    def test_summary_rows_prefix_axis_value(self):
        rows = run_sweep(sweep_spec()).summary_rows()
        assert [row["population_size"] for row in rows] == [50, 100, 200]

    def test_series_shape_and_metric_check(self):
        result = run_sweep(sweep_spec())
        series = result.series()
        assert set(series) == {"knowledge-free"}
        assert [x for x, _ in series["knowledge-free"]] == [50.0, 100.0, 200.0]
        with pytest.raises(ScenarioError, match="not collected"):
            result.series("no_such_metric")

    def test_per_point_trials_override(self):
        spec = sweep_spec(sweep={"parameter": "stream.params.alpha",
                                 "values": [2, 4], "trials": 3})
        result = run_sweep(spec)
        assert all(point.result.summaries[0]["trials"] == 3
                   for point in result.points)

    def test_network_sweep_runs(self):
        spec = network_churn_spec(
            sweep={"parameter": "network.num_malicious", "values": [1, 3]})
        result = run_sweep(spec)
        assert len(result.points) == 2
        assert all(point.result.mode == "network" for point in result.points)

    def test_figure8_sweep_matches_legacy_driver(self):
        # The retired per-figure loop, inlined: one shared master generator,
        # one harness per point, default strategy pair.  figure8 must
        # reproduce it bit for bit through ScenarioRunner.run_sweep.
        from repro.experiments import figures
        from repro.experiments.harness import (
            ExperimentHarness,
            default_strategy_factories,
        )
        from repro.streams.generators import peak_attack_stream
        from repro.utils.rng import ensure_rng

        population_sizes, stream_size, trials, seed = (20, 60), 2500, 2, 33
        rng = ensure_rng(seed)
        legacy = {"knowledge-free": [], "omniscient": []}
        for value in population_sizes:
            harness = ExperimentHarness(
                stream_factory=lambda trial_rng, value=value:
                    peak_attack_stream(stream_size, int(value),
                                       peak_fraction=0.5,
                                       random_state=trial_rng),
                strategy_factories=default_strategy_factories(10, 10, 17),
                trials=trials,
                random_state=rng,
            )
            result = harness.run()
            for name in legacy:
                legacy[name].append((float(value), result.mean_gain(name)))

        series = figures.figure8(population_sizes=population_sizes,
                                 stream_size=stream_size, trials=trials,
                                 random_state=seed)
        assert series == legacy


class TestChurnSpec:
    def test_json_round_trip_is_lossless(self):
        for spec in (churn_spec(), network_churn_spec()):
            assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_unknown_churn_key_rejected(self):
        data = churn_spec().to_dict()
        data["churn"]["jitter"] = 0.1
        with pytest.raises(ScenarioError, match="unknown key"):
            ScenarioSpec.from_dict(data)

    def test_stream_mode_requires_initial_population(self):
        with pytest.raises(ScenarioError, match="initial_population"):
            churn_spec(churn={"churn_steps": 10, "stable_steps": 10})

    def test_stream_and_churn_sections_conflict(self):
        with pytest.raises(ScenarioError, match="both a stream and a churn"):
            churn_spec(stream={"kind": "zipf",
                               "params": {"stream_size": 100,
                                          "population_size": 10}})

    def test_adversary_and_churn_sections_conflict(self):
        with pytest.raises(ScenarioError, match="churn and adversary"):
            churn_spec(adversary={"kind": "flooding",
                                  "params": {"distinct_identifiers": 5}})

    def test_network_mode_rejects_stream_only_fields(self):
        with pytest.raises(ScenarioError, match="initial_population"):
            network_churn_spec(churn={"churn_steps": 5, "stable_steps": 5,
                                      "initial_population": 10})
        with pytest.raises(ScenarioError, match="advertisements_per_step"):
            network_churn_spec(churn={"churn_steps": 5, "stable_steps": 5,
                                      "advertisements_per_step": 3})

    def test_stable_only_needs_stable_phase(self):
        with pytest.raises(ScenarioError, match="non-empty stable phase"):
            ChurnSpec(churn_steps=10, stable_steps=0)
        # pure-churn traces remain reachable when stable_only is off
        spec = churn_spec(churn={"initial_population": 20, "churn_steps": 50,
                                 "stable_steps": 0, "stable_only": False})
        assert spec.churn.stable_steps == 0


class TestChurnExecution:
    def test_round_tripped_spec_reproduces_identical_results(self):
        spec = churn_spec()
        first = run_scenario(spec)
        second = run_scenario(ScenarioSpec.from_json(spec.to_json()))
        assert first.to_dict() == second.to_dict()

    def test_stable_only_metrics_differ_from_full_stream(self):
        stable = run_scenario(churn_spec())
        full_data = churn_spec().to_dict()
        full_data["churn"]["stable_only"] = False
        full = run_scenario(ScenarioSpec.from_dict(full_data))
        assert (stable.summaries[0]["mean_input_divergence"]
                != full.summaries[0]["mean_input_divergence"])

    def test_stable_input_metrics_cover_stable_population_only(self):
        # The post-T0 input is advertisements of alive nodes only, so its
        # measured divergence is against the stable population: it must be
        # far smaller than the full-stream divergence, which mixes epochs.
        result = run_scenario(churn_spec(trials=3))
        assert result.summaries[0]["mean_input_divergence"] < 0.2

    def test_pure_churn_trace_runs_without_stable_phase(self):
        spec = churn_spec(churn={"initial_population": 30, "churn_steps": 80,
                                 "stable_steps": 0, "join_rate": 0.3,
                                 "leave_rate": 0.3, "stable_only": False})
        result = run_scenario(spec)
        assert result.details[0]["stream_size"] > 0

    def test_churn_axis_is_sweepable(self):
        spec = churn_spec(sweep={"parameter": "churn.leave_rate",
                                 "values": [0.1, 0.5]})
        result = run_sweep(spec)
        assert [point.value for point in result.points] == [0.1, 0.5]

    def test_churn_stream_component_direct_use(self):
        # "churn" is an ordinary registered stream component as well.
        from repro.scenarios.registry import STREAMS

        stream = STREAMS.build("churn", {"initial_population": 25,
                                         "churn_steps": 60,
                                         "stable_steps": 40},
                               random_state=3)
        assert stream.size == 100 * 5
        assert stream.stability_time == 60 * 5
        assert set(stream.stable_population) <= set(stream.universe)


class TestNetworkChurnExecution:
    def test_report_covers_stable_population_only(self):
        from repro.network.simulator import SystemSimulation

        spec = network_churn_spec()
        simulation = SystemSimulation.from_scenario(spec)
        simulation.run()
        report = simulation.report()
        stable = set(simulation.stable_correct_ids)
        assert {node.node_id for node in report.per_node} <= stable
        assert simulation.stability_round == 8

    def test_membership_changes_are_scheduled(self):
        from repro.network.simulator import SystemSimulation

        simulation = SystemSimulation.from_scenario(network_churn_spec())
        events = simulation.membership_events
        assert events, "join/leave rates of 0.4/0.3 over 8 rounds yield events"
        assert all(event.round < 8 for event in events)

    def test_round_tripped_spec_reproduces_identical_results(self):
        spec = network_churn_spec(trials=2)
        first = run_scenario(spec)
        second = run_scenario(ScenarioSpec.from_json(spec.to_json()))
        assert first.to_dict() == second.to_dict()

    def test_churn_config_owns_round_count(self):
        from repro.network.simulator import SystemSimulation

        simulation = SystemSimulation.from_scenario(network_churn_spec())
        with pytest.raises(ValueError, match="churn_rounds"):
            simulation.run(rounds=3)
        simulation.run()
        assert simulation.engine.rounds_executed == 16

    def test_random_walk_protocol_supports_churn(self):
        data = network_churn_spec().to_dict()
        data["network"]["protocol"] = "random-walk"
        result = run_scenario(ScenarioSpec.from_dict(data))
        assert result.summaries


class TestExampleScenarios:
    def test_bundled_sweep_and_churn_specs_parse(self):
        import pathlib

        examples = pathlib.Path(__file__).resolve().parents[1] / "examples" / "scenarios"
        for path in sorted(examples.glob("*.json")):
            spec = ScenarioSpec.load(path)
            ScenarioRunner(spec).validate()

    def test_churn_example_reports_stable_uniformity(self):
        import pathlib

        examples = pathlib.Path(__file__).resolve().parents[1] / "examples" / "scenarios"
        spec = ScenarioSpec.load(examples / "churn_stable_uniformity.json")
        assert spec.churn is not None and spec.churn.stable_only
