"""Tests for repro.core.base (the shared strategy interface)."""

import pytest

from repro.core.base import SamplingStrategy
from repro.streams import IdentifierStream, uniform_stream


class RecordingStrategy(SamplingStrategy):
    """Minimal concrete strategy: admit everything until the memory is full."""

    name = "recording"

    def _admit(self, identifier: int) -> None:
        if not self.memory_is_full and identifier not in self._memory_set:
            self._insert(identifier)


class TestSamplingStrategyBase:
    def test_rejects_non_positive_memory(self):
        with pytest.raises(ValueError):
            RecordingStrategy(0)

    def test_process_returns_output_after_first_element(self):
        strategy = RecordingStrategy(3, random_state=0)
        assert strategy.process(7) == 7

    def test_sample_uniform_over_memory(self):
        strategy = RecordingStrategy(3, random_state=1)
        for identifier in [1, 2, 3]:
            strategy.process(identifier)
        samples = {strategy.sample() for _ in range(200)}
        assert samples == {1, 2, 3}

    def test_process_stream_propagates_metadata(self):
        stream = uniform_stream(100, 10, random_state=2)
        strategy = RecordingStrategy(5, random_state=2)
        output = strategy.process_stream(stream)
        assert isinstance(output, IdentifierStream)
        assert output.universe == stream.universe
        assert output.size == stream.size
        assert strategy.name in output.label

    def test_process_stream_plain_iterable(self):
        strategy = RecordingStrategy(5, random_state=3)
        output = strategy.process_stream([1, 2, 3, 4])
        assert output.size == 4

    def test_elements_processed_counter(self):
        strategy = RecordingStrategy(2, random_state=4)
        strategy.process_stream(range(10))
        assert strategy.elements_processed == 10

    def test_memory_copy_is_isolated(self):
        strategy = RecordingStrategy(3, random_state=5)
        strategy.process(1)
        memory = strategy.memory
        memory.append(99)
        assert 99 not in strategy.memory

    def test_reset_clears_state(self):
        strategy = RecordingStrategy(3, random_state=6)
        strategy.process_stream([1, 2, 3])
        strategy.reset()
        assert strategy.memory == []
        assert strategy.elements_processed == 0
        assert strategy.sample() is None
