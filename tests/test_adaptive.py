"""Tests for repro.core.adaptive (self-sizing knowledge-free strategy)."""

import pytest

from repro.core.adaptive import AdaptiveKnowledgeFreeStrategy
from repro.core.knowledge_free import KnowledgeFreeStrategy
from repro.metrics import kl_gain
from repro.streams import peak_attack_stream, uniform_stream


class TestAdaptiveKnowledgeFreeStrategy:
    def test_starts_with_initial_width(self):
        strategy = AdaptiveKnowledgeFreeStrategy(10, initial_sketch_width=16,
                                                 random_state=0)
        assert strategy.current_width == 16
        assert strategy.epoch == 0
        assert strategy.epoch_widths == [16]

    def test_grows_when_population_exceeds_load_factor(self):
        strategy = AdaptiveKnowledgeFreeStrategy(10, initial_sketch_width=8,
                                                 load_factor=2.0,
                                                 random_state=1)
        stream = uniform_stream(5_000, 500, random_state=1)
        strategy.process_stream(stream)
        assert strategy.epoch >= 1
        assert strategy.current_width > 8
        widths = strategy.epoch_widths
        assert all(b == 2 * a for a, b in zip(widths, widths[1:]))

    def test_does_not_grow_for_small_population(self):
        strategy = AdaptiveKnowledgeFreeStrategy(5, initial_sketch_width=64,
                                                 load_factor=4.0,
                                                 random_state=2)
        stream = uniform_stream(3_000, 40, random_state=2)
        strategy.process_stream(stream)
        assert strategy.epoch == 0
        assert strategy.current_width == 64

    def test_width_capped_at_max(self):
        strategy = AdaptiveKnowledgeFreeStrategy(5, initial_sketch_width=8,
                                                 load_factor=1.0, max_width=32,
                                                 random_state=3)
        stream = uniform_stream(4_000, 1_000, random_state=3)
        strategy.process_stream(stream)
        assert strategy.current_width <= 32

    def test_distinct_estimate_tracks_population(self):
        strategy = AdaptiveKnowledgeFreeStrategy(5, random_state=4)
        stream = uniform_stream(5_000, 300, random_state=4)
        strategy.process_stream(stream)
        assert 150 <= strategy.estimated_distinct() <= 600

    def test_memory_invariants_preserved(self):
        strategy = AdaptiveKnowledgeFreeStrategy(12, initial_sketch_width=8,
                                                 load_factor=2.0,
                                                 random_state=5)
        stream = peak_attack_stream(8_000, 400, random_state=5)
        for identifier in stream:
            strategy.process(identifier)
            assert len(strategy.memory) <= 12
            assert len(set(strategy.memory)) == len(strategy.memory)

    def test_gain_comparable_to_fixed_width(self):
        stream = peak_attack_stream(20_000, 500, peak_fraction=0.5,
                                    random_state=6)
        adaptive = AdaptiveKnowledgeFreeStrategy(10, initial_sketch_width=8,
                                                 load_factor=2.0,
                                                 random_state=6)
        fixed = KnowledgeFreeStrategy(10, sketch_width=8, sketch_depth=5,
                                      random_state=6)
        adaptive_gain = kl_gain(stream, adaptive.process_stream(stream))
        fixed_gain = kl_gain(stream, fixed.process_stream(stream))
        assert adaptive_gain > 0.5
        assert adaptive_gain >= fixed_gain - 0.15

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveKnowledgeFreeStrategy(5, initial_sketch_width=0)
        with pytest.raises(ValueError):
            AdaptiveKnowledgeFreeStrategy(5, load_factor=0)
        with pytest.raises(ValueError):
            AdaptiveKnowledgeFreeStrategy(5, initial_sketch_width=64,
                                          max_width=32)

    def test_name(self):
        assert AdaptiveKnowledgeFreeStrategy(5).name == "adaptive-knowledge-free"


class TestEpochSplitBatchPath:
    """The chunk-level epoch scan is bit-identical to the scalar loop.

    The adaptive strategy used to fall back to the generic per-element loop
    because it overrides ``_admit``; the dedicated batch path splits chunks
    at epoch boundaries instead, and must reproduce the scalar path exactly
    — including *where* each regrowth happens.
    """

    def _factory(self, seed=5):
        return AdaptiveKnowledgeFreeStrategy(
            12, initial_sketch_width=8, sketch_depth=4, load_factor=2.0,
            random_state=seed)

    def test_outputs_and_epochs_match_scalar_across_growths(self):
        import numpy as np
        from repro.engine import run_stream, run_stream_scalar

        stream = uniform_stream(20_000, 2_000, random_state=11)
        scalar = self._factory()
        batch = self._factory()
        scalar_result = run_stream_scalar(scalar, stream)
        batch_result = run_stream(batch, stream, batch_size=1024)
        assert scalar.epoch >= 3  # the scan crossed several boundaries
        assert np.array_equal(scalar_result.outputs, batch_result.outputs)
        assert scalar.epoch_widths == batch.epoch_widths
        assert scalar.memory == batch.memory
        assert np.array_equal(scalar.frequency_oracle.table,
                              batch.frequency_oracle.table)
        assert scalar.estimated_distinct() == batch.estimated_distinct()

    def test_chunk_size_invariance(self):
        import numpy as np
        from repro.engine import run_stream

        stream = uniform_stream(8_000, 900, random_state=13)
        reference = run_stream(self._factory(), stream, batch_size=4096)
        for batch_size in (1, 13, 777, 8000):
            result = run_stream(self._factory(), stream,
                                batch_size=batch_size)
            assert np.array_equal(reference.outputs,
                                  result.outputs), batch_size

    def test_width_cap_respected_in_batch_path(self):
        from repro.engine import run_stream

        strategy = AdaptiveKnowledgeFreeStrategy(
            5, initial_sketch_width=8, load_factor=1.0, max_width=32,
            random_state=3)
        run_stream(strategy, uniform_stream(4_000, 1_000, random_state=3),
                   batch_size=512)
        assert strategy.current_width <= 32

    def test_subclasses_fall_back_to_generic_loop(self):
        import numpy as np
        from repro.engine import run_stream, run_stream_scalar

        class Tweaked(AdaptiveKnowledgeFreeStrategy):
            def _admit(self, identifier):
                super()._admit(identifier)

        stream = uniform_stream(3_000, 400, random_state=9)
        scalar = run_stream_scalar(Tweaked(8, random_state=1), stream)
        batch = run_stream(Tweaked(8, random_state=1), stream, batch_size=256)
        assert np.array_equal(scalar.outputs, batch.outputs)
