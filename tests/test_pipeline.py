"""Tests for double-buffered pipelined dispatch (repro.engine.batch/base).

The guarantee under test: the pipelined driving loop — ``run_stream``
beginning chunk ``k+1`` before collecting chunk ``k``, and the underlying
``dispatch_begin``/``dispatch_finish`` ticket machinery — produces outputs,
merged memory, loads and samples bit-identical to the serial backend on
every edge the double buffer has: single-chunk streams, a final partial
chunk, ring wrap-around, a stalled worker exercising backpressure, sampling
between begin and finish (pipeline drain), and a mid-run autoscale
migration with the shared-memory transport on.
"""

import time

import numpy as np
import pytest

from repro import telemetry
from repro.core import KnowledgeFreeStrategy
from repro.engine import ShardedSamplingService, run_stream
from repro.engine.backends.process import ProcessBackend
from repro.engine.backends.serial import SerialBackend
from repro.engine.backends.socket import SocketBackend
from repro.engine.sharded import KnowledgeFreeShardFactory
from repro.streams import zipf_stream

STREAM = zipf_stream(8_000, 1_000, alpha=1.3, random_state=17)
IDS = np.asarray(STREAM.identifiers, dtype=np.int64)

AUTOSCALE = {"min_workers": 1, "max_workers": 3,
             "target_load_per_worker": 2_000, "check_every": 1_024}


def _service(backend="process", seed=23, shards=4, **kwargs):
    return ShardedSamplingService.knowledge_free(
        shards=shards, memory_size=10, sketch_width=32, sketch_depth=4,
        random_state=seed, backend=backend, **kwargs)


def _serial_run(ids, batch_size, seed=23):
    """Reference outputs/memory/samples/loads of a serial run_stream."""
    service = _service("serial", seed=seed)
    result = run_stream(service, ids, batch_size=batch_size)
    reference = (result.outputs, service.merged_memory(),
                 service.sample_many(40, strict=False),
                 service.shard_loads())
    service.close()
    return reference


def _assert_matches(service, result, reference):
    outputs, memory, samples, loads = reference
    assert np.array_equal(result.outputs, outputs)
    assert service.merged_memory() == memory
    assert service.sample_many(40, strict=False) == samples
    assert service.shard_loads() == loads


# --------------------------------------------------------------------- #
# Who pipelines
# --------------------------------------------------------------------- #
class TestPipelineSelection:
    def test_depths(self):
        # double-buffered: process only.  The socket backend's request
        # protocol refreshes placement snapshots between dispatches, so it
        # stays synchronous; serial has no workers to overlap with.
        assert ProcessBackend.pipeline_depth == 2
        assert SerialBackend.pipeline_depth == 1
        assert SocketBackend.pipeline_depth == 1

    def test_service_reports_backend_capability(self):
        with _service(workers=2) as service:
            assert service.supports_pipelining is True
        serial = _service("serial")
        assert serial.supports_pipelining is False
        serial.close()

    def test_pipeline_true_needs_begin_finish(self):
        strategy = KnowledgeFreeStrategy(10, sketch_width=32, sketch_depth=4,
                                         random_state=5)
        with pytest.raises(TypeError, match="begin_batch"):
            run_stream(strategy, IDS[:100], pipeline=True)

    def test_sync_fallback_ticket_on_serial(self):
        """begin/finish drive the serial backend eagerly but identically."""
        reference = _serial_run(IDS[:4096], 1024)
        service = _service("serial")
        try:
            outputs = []
            for start in range(0, 4096, 1024):
                handle = service.begin_batch(IDS[start:start + 1024])
                outputs.append(service.finish_batch(handle))
            assert np.array_equal(np.concatenate(outputs), reference[0])
            assert service.merged_memory() == reference[1]
        finally:
            service.close()


# --------------------------------------------------------------------- #
# run_stream edges, all bit-identical to serial
# --------------------------------------------------------------------- #
class TestPipelinedRunStream:
    @pytest.mark.parametrize("transport", ["shm", "pickle"])
    def test_auto_pipelined_with_final_partial_chunk(self, transport):
        ids = IDS[:6000]  # 2048-chunks: 2048 + 2048 + 1904 (partial tail)
        reference = _serial_run(ids, 2048)
        with _service(workers=2, transport=transport) as service:
            result = run_stream(service, ids, batch_size=2048)
            assert result.batches == 3
            _assert_matches(service, result, reference)

    def test_single_chunk_stream(self):
        ids = IDS[:100]
        reference = _serial_run(ids, 2048)
        with _service(workers=2) as service:
            result = run_stream(service, ids, batch_size=2048)
            assert result.batches == 1
            _assert_matches(service, result, reference)

    def test_empty_stream(self):
        with _service(workers=2) as service:
            result = run_stream(service, np.zeros(0, dtype=np.int64))
            assert result.batches == 0
            assert result.outputs.size == 0

    def test_explicit_pipeline_off_matches(self):
        ids = IDS[:6000]
        reference = _serial_run(ids, 2048)
        with _service(workers=2) as service:
            result = run_stream(service, ids, batch_size=2048,
                                pipeline=False)
            _assert_matches(service, result, reference)

    def test_ring_wrap_around_over_many_chunks(self):
        """A 2-slot ring cycled by 16 chunks stays bit-identical."""
        reference = _serial_run(IDS, 512)
        with _service(workers=2, transport="shm",
                      ring_slots=2) as service:
            result = run_stream(service, IDS, batch_size=512)
            assert result.batches == 16
            _assert_matches(service, result, reference)

    def test_backpressure_with_a_stalled_worker(self):
        """A slow worker fills the pipeline; outputs still match serial."""
        ids = IDS[:4096]
        reference_service = ShardedSamplingService(
            4, _SlowKnowledgeFreeFactory(0.0), random_state=23)
        reference = run_stream(reference_service, ids, batch_size=512)
        expected_memory = reference_service.merged_memory()
        reference_service.close()
        with telemetry.enabled() as registry:
            service = ShardedSamplingService(
                4, _SlowKnowledgeFreeFactory(0.03), random_state=23,
                backend="process", workers=2, transport="shm")
            try:
                result = run_stream(service, ids, batch_size=512)
                assert np.array_equal(result.outputs, reference.outputs)
                assert service.merged_memory() == expected_memory
            finally:
                service.close()
            snapshot = registry.snapshot()
        occupancy = snapshot["histograms"][
            "backend.process.pipeline_occupancy"]
        assert occupancy["count"] == result.batches
        # with the worker stalled, later begins found the buffer occupied
        overlap = snapshot["histograms"][
            "backend.process.staging_overlap_seconds"]
        assert overlap["count"] > 0


# --------------------------------------------------------------------- #
# Direct begin/finish API
# --------------------------------------------------------------------- #
class TestBeginFinish:
    def test_overfilled_pipeline_self_collects(self):
        """Beginning past the depth collects the oldest ticket first."""
        chunks = [IDS[start:start + 1024] for start in range(0, 4096, 1024)]
        serial = _service("serial")
        expected = [serial.on_receive_batch(chunk) for chunk in chunks]
        expected_memory = serial.merged_memory()
        serial.close()
        with _service(workers=2) as service:
            handles = [service.begin_batch(chunk) for chunk in chunks]
            outputs = [service.finish_batch(handle) for handle in handles]
            for ours, want in zip(outputs, expected):
                assert np.array_equal(ours, want)
            assert service.merged_memory() == expected_memory

    def test_sampling_between_begin_and_finish_drains(self):
        """Inspection mid-flight drains the pipeline — same coins, same
        samples, and the handle still finishes correctly."""
        chunk = IDS[:2048]
        serial = _service("serial")
        expected = serial.on_receive_batch(chunk)
        expected_samples = serial.sample_many(10, strict=False)
        serial.close()
        with _service(workers=2) as service:
            handle = service.begin_batch(chunk)
            samples = service.sample_many(10, strict=False)
            outputs = service.finish_batch(handle)
            assert samples == expected_samples
            assert np.array_equal(outputs, expected)

    def test_empty_chunk_handle(self):
        with _service(workers=2) as service:
            handle = service.begin_batch(np.zeros(0, dtype=np.int64))
            assert handle == (None, 0)
            assert service.finish_batch(handle).size == 0


# --------------------------------------------------------------------- #
# Mid-run autoscaling under the pipelined shm driver
# --------------------------------------------------------------------- #
class TestPipelinedAutoscale:
    def test_flash_crowd_scale_up_matches_serial(self):
        """The acceptance bar: shm transport + pipelined driving + live
        autoscale migration mid-stream, bit-identical to serial."""
        reference = _serial_run(IDS, 512)
        with _service(workers=1, transport="shm",
                      autoscale=AUTOSCALE) as service:
            assert service.placement.workers == 1
            result = run_stream(service, IDS, batch_size=512)
            stats = service.autoscaler.stats()
            assert service.placement.workers == 3
            assert stats["scale_ups"] == 2
            assert stats["evaluations"] > 0
            _assert_matches(service, result, reference)


# --------------------------------------------------------------------- #
# Worker-side helpers (module-level so worker processes can ship them)
# --------------------------------------------------------------------- #
class _SlowShardService:
    """Delegating shard service whose batch ingestion is throttled."""

    def __init__(self, inner, delay):
        self._inner = inner
        self._delay = delay

    def on_receive_batch(self, identifiers):
        if self._delay:
            time.sleep(self._delay)
        return self._inner.on_receive_batch(identifiers)

    def __getattr__(self, name):
        return getattr(self._inner, name)


class _SlowKnowledgeFreeFactory:
    """Knowledge-free shards; shard 0's ingestion sleeps per batch."""

    def __init__(self, delay):
        self._delay = delay
        self._inner = KnowledgeFreeShardFactory(10, sketch_width=32,
                                                sketch_depth=4)

    def __call__(self, index, rng):
        inner = self._inner(index, rng)
        return _SlowShardService(inner, self._delay if index == 0 else 0.0)
