"""Tests for repro.network.gossip."""

import pytest

from repro.network.gossip import GossipConfig, GossipSimulation
from repro.network.node import NodeConfig


class TestGossipConfig:
    def test_defaults(self):
        config = GossipConfig()
        assert config.fanout == 3
        assert config.malicious_fanout == 6

    def test_validation(self):
        with pytest.raises(ValueError):
            GossipConfig(fanout=0)
        with pytest.raises(ValueError):
            GossipConfig(malicious_fanout=0)


class TestGossipSimulation:
    def test_population_composition(self):
        simulation = GossipSimulation(10, 3, random_state=0)
        assert len(simulation.correct_ids) == 10
        assert len(simulation.malicious_ids) == 3
        assert len(simulation.nodes) == 13

    def test_sybil_identifier_generation(self):
        simulation = GossipSimulation(5, 2, sybil_identifiers_per_malicious=4,
                                      random_state=1)
        # Each malicious node controls itself plus 3 fabricated identifiers.
        assert len(simulation.sybil_identifiers) == 2 * 4

    def test_rounds_deliver_identifiers(self):
        simulation = GossipSimulation(15, 0, random_state=2)
        simulation.run(5)
        assert simulation.rounds_executed == 5
        streams = [simulation.input_stream_of(identifier)
                   for identifier in simulation.correct_ids]
        assert sum(stream.size for stream in streams) > 0

    def test_output_stream_lengths_match_inputs(self):
        simulation = GossipSimulation(10, 2, random_state=3)
        simulation.run(5)
        for identifier in simulation.correct_ids:
            input_stream = simulation.input_stream_of(identifier)
            output_stream = simulation.output_stream_of(identifier)
            assert output_stream.size == input_stream.size

    def test_malicious_identifiers_overrepresented_in_input(self):
        simulation = GossipSimulation(20, 5, random_state=4,
                                      config=GossipConfig(fanout=2,
                                                          malicious_fanout=8))
        simulation.run(20)
        total_malicious = 0
        total = 0
        malicious = set(simulation.malicious_ids) | set(
            simulation.sybil_identifiers)
        for identifier in simulation.correct_ids:
            stream = simulation.input_stream_of(identifier)
            total += stream.size
            total_malicious += sum(1 for received in stream.identifiers
                                   if received in malicious)
        # 5/25 of the nodes send 4x as much: they should exceed their fair share.
        assert total > 0
        assert total_malicious / total > 0.3

    def test_input_stream_universe_includes_sybils(self):
        simulation = GossipSimulation(5, 1, sybil_identifiers_per_malicious=3,
                                      random_state=5)
        simulation.run(2)
        stream = simulation.input_stream_of(0)
        assert set(simulation.sybil_identifiers) <= set(stream.universe)

    def test_malicious_node_has_no_sampling_stream(self):
        simulation = GossipSimulation(4, 1, random_state=6)
        simulation.run(1)
        with pytest.raises(ValueError):
            simulation.input_stream_of(simulation.malicious_ids[0])

    def test_correct_overlay_connectivity_check_runs(self):
        simulation = GossipSimulation(10, 2, random_state=7)
        assert isinstance(simulation.correct_overlay_is_connected(), bool)

    def test_rejects_invalid_population(self):
        with pytest.raises(ValueError):
            GossipSimulation(0, 1)
        with pytest.raises(ValueError):
            GossipSimulation(5, -1)

    def test_custom_node_config_propagates(self):
        config = GossipConfig(node_config=NodeConfig(memory_size=4,
                                                     sketch_width=6,
                                                     sketch_depth=2))
        simulation = GossipSimulation(5, 0, config=config, random_state=8)
        node = simulation.correct_nodes()[0]
        assert node.sampling_service.strategy.memory_size == 4
