"""Tests for repro.cli (the python -m repro command-line interface)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        subparsers = next(action for action in parser._actions
                          if hasattr(action, "choices") and action.choices
                          and not action.option_strings)
        commands = set(subparsers.choices)
        expected = {"list", "table1", "table2", "figure3", "figure4",
                    "figure5", "figure6", "figure7", "figure8", "figure9",
                    "figure10", "figure11", "figure12"}
        assert expected <= commands

    def test_figure7_requires_variant(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["figure7"])
        arguments = parser.parse_args(["figure7", "a"])
        assert arguments.variant == "a"


class TestMain:
    def test_no_command_prints_help(self, capsys):
        assert main([]) == 1
        assert "usage" in capsys.readouterr().out.lower()

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "table1" in output
        assert "figure12" in output

    def test_table1_command(self, capsys):
        assert main(["table1"]) == 0
        output = capsys.readouterr().out
        assert "L_ks (computed)" in output
        assert "38" in output

    def test_figure3_command_with_arguments(self, capsys):
        assert main(["figure3", "--k", "10", "20", "--eta", "0.1",
                     "--s", "5"]) == 0
        output = capsys.readouterr().out
        assert "k" in output
        assert "38" in output  # L_{10,5}(0.1)

    def test_figure4_command(self, capsys):
        assert main(["figure4", "--k", "10", "--eta", "0.1"]) == 0
        assert "44" in capsys.readouterr().out  # E_10(0.1)

    def test_table2_command(self, capsys):
        assert main(["table2", "--scale", "0.005"]) == 0
        assert "NASA" in capsys.readouterr().out

    def test_figure5_command(self, capsys):
        assert main(["figure5", "--scale", "0.005"]) == 0
        assert "Saskatchewan" in capsys.readouterr().out

    def test_figure7_command_small(self, capsys):
        assert main(["figure7", "a", "--stream-size", "3000",
                     "--population-size", "100", "--seed", "1"]) == 0
        output = capsys.readouterr().out
        assert "knowledge-free" in output
        assert "KL to uniform" in output

    def test_figure8_command_small(self, capsys):
        assert main(["figure8", "--n", "20", "50", "--stream-size", "2000",
                     "--trials", "1", "--seed", "2"]) == 0
        output = capsys.readouterr().out
        assert "omniscient" in output

    def test_figure10_command_small(self, capsys):
        assert main(["figure10", "b", "--c", "5", "20", "--stream-size",
                     "2000", "--population-size", "100", "--trials", "1",
                     "--seed", "3"]) == 0
        assert "knowledge-free" in capsys.readouterr().out

    def test_figure12_command_small(self, capsys):
        assert main(["figure12", "--scale", "0.002", "--trials", "1",
                     "--seed", "4"]) == 0
        assert "ClarkNet" in capsys.readouterr().out


class TestRunCommand:
    """The `repro run` scenario entry point."""

    def _write_spec(self, tmp_path):
        from repro.scenarios import ScenarioSpec
        spec = ScenarioSpec.from_dict({
            "name": "cli-smoke",
            "seed": 3,
            "trials": 1,
            "stream": {"kind": "zipf",
                       "params": {"stream_size": 2000,
                                  "population_size": 100, "alpha": 4}},
            "strategies": [{"kind": "knowledge-free",
                            "params": {"memory_size": 5, "sketch_width": 8,
                                       "sketch_depth": 3}}],
        })
        path = tmp_path / "scenario.json"
        spec.save(path)
        return path

    def test_run_prints_summary_table(self, tmp_path, capsys):
        assert main(["run", str(self._write_spec(tmp_path))]) == 0
        output = capsys.readouterr().out
        assert "cli-smoke" in output
        assert "mean_gain" in output

    def test_run_json_output_round_trips(self, tmp_path, capsys):
        import json
        assert main(["run", str(self._write_spec(tmp_path)), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["name"] == "cli-smoke"
        assert payload["summaries"][0]["strategy"] == "knowledge-free"

    def test_run_overrides_trials_and_seed(self, tmp_path, capsys):
        assert main(["run", str(self._write_spec(tmp_path)),
                     "--trials", "2", "--seed", "9", "--details"]) == 0
        output = capsys.readouterr().out
        assert "trials=2" in output
        assert "seed=9" in output

    def test_run_components_listing(self, capsys):
        assert main(["run", "--components"]) == 0
        output = capsys.readouterr().out
        assert "strategies:" in output
        assert "knowledge-free" in output

    def test_run_without_spec_errors(self, capsys):
        with pytest.raises(SystemExit):
            main(["run"])

    def test_list_mentions_run(self, capsys):
        assert main(["list"]) == 0
        assert "run <scenario.json>" in capsys.readouterr().out

    def _write_sweep_spec(self, tmp_path):
        from repro.scenarios import ScenarioSpec
        spec = ScenarioSpec.from_dict({
            "name": "cli-sweep",
            "seed": 3,
            "trials": 1,
            "stream": {"kind": "zipf",
                       "params": {"stream_size": 1500,
                                  "population_size": 100, "alpha": 4}},
            "strategies": [{"kind": "knowledge-free",
                            "params": {"memory_size": 5, "sketch_width": 8,
                                       "sketch_depth": 3}}],
            "sweep": {"parameter": "stream.params.population_size",
                      "values": [50, 100], "label": "n"},
        })
        path = tmp_path / "sweep.json"
        spec.save(path)
        return path

    def test_run_sweep_prints_per_point_blocks(self, tmp_path, capsys):
        assert main(["run", str(self._write_sweep_spec(tmp_path))]) == 0
        output = capsys.readouterr().out
        assert "scenario sweep: cli-sweep" in output
        assert "n = 50" in output
        assert "n = 100" in output

    def test_run_sweep_summary_table(self, tmp_path, capsys):
        assert main(["run", str(self._write_sweep_spec(tmp_path)),
                     "--sweep-summary"]) == 0
        output = capsys.readouterr().out
        assert "n " in output
        assert "mean_gain" in output

    def test_run_sweep_json_round_trips(self, tmp_path, capsys):
        import json
        assert main(["run", str(self._write_sweep_spec(tmp_path)),
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["name"] == "cli-sweep"
        assert [point["value"] for point in payload["points"]] == [50, 100]

    def test_run_trials_flag_overrides_sweep_trials(self, tmp_path, capsys):
        import json
        path = self._write_sweep_spec(tmp_path)
        data = json.loads(path.read_text())
        data["sweep"]["trials"] = 1
        path.write_text(json.dumps(data))
        assert main(["run", str(path), "--trials", "2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        for point in payload["points"]:
            assert point["result"]["summaries"][0]["trials"] == 2

    def test_sweep_summary_requires_sweep_section(self, tmp_path):
        with pytest.raises(SystemExit, match="sweep section"):
            main(["run", str(self._write_spec(tmp_path)), "--sweep-summary"])

    def test_run_churn_scenario(self, tmp_path, capsys):
        from repro.scenarios import ScenarioSpec
        spec = ScenarioSpec.from_dict({
            "name": "cli-churn",
            "seed": 2,
            "trials": 1,
            "churn": {"initial_population": 30, "churn_steps": 60,
                      "stable_steps": 80, "join_rate": 0.3,
                      "leave_rate": 0.3},
            "strategies": [{"kind": "knowledge-free",
                            "params": {"memory_size": 5, "sketch_width": 8,
                                       "sketch_depth": 3}}],
        })
        path = tmp_path / "churn.json"
        spec.save(path)
        assert main(["run", str(path)]) == 0
        output = capsys.readouterr().out
        assert "cli-churn" in output
        assert "mean_gain" in output


class TestTelemetryCli:
    """The observability surface: throughput --json, run --telemetry-out,
    and the root --log-level flag."""

    def _write_sharded_spec(self, tmp_path):
        from repro.scenarios import ScenarioSpec
        spec = ScenarioSpec.from_dict({
            "name": "cli-telemetry",
            "seed": 7,
            "trials": 1,
            "stream": {"kind": "zipf",
                       "params": {"stream_size": 6000,
                                  "population_size": 300, "alpha": 1.5}},
            "strategies": [{"kind": "knowledge-free",
                            "params": {"memory_size": 5, "sketch_width": 8,
                                       "sketch_depth": 3}}],
            "engine": {"driver": "batch", "batch_size": 1024, "shards": 2,
                       "backend": "serial"},
        })
        path = tmp_path / "sharded.json"
        spec.save(path)
        return path

    def test_throughput_json_report(self, capsys):
        import json
        assert main(["throughput", "--stream-size", "4000",
                     "--population-size", "400", "--scalar-limit", "2000",
                     "--batch-size", "1024", "--memory-size", "5",
                     "--sketch-width", "8", "--sketch-depth", "3",
                     "--shards", "2", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["config"]["stream_size"] == 4000
        assert report["config"]["backend"] == "serial"
        drivers = [row["driver"] for row in report["tiers"]]
        assert drivers == ["scalar", "batch", "sharded x2"]
        for row in report["tiers"]:
            assert row["elements_per_second"] > 0
            assert row["seconds"] >= 0
        counters = report["telemetry"]["counters"]
        assert counters["engine.elements"] > 0
        assert counters["backend.serial.dispatches"] >= 1

    def test_throughput_table_has_no_telemetry_noise(self, capsys):
        assert main(["throughput", "--stream-size", "3000",
                     "--population-size", "300", "--scalar-limit", "1000",
                     "--memory-size", "5", "--sketch-width", "8",
                     "--sketch-depth", "3", "--shards", "2"]) == 0
        output = capsys.readouterr().out
        assert "elements/s" in output
        assert "telemetry" not in output

    def test_run_telemetry_out_writes_snapshot(self, tmp_path, capsys):
        import json
        out = tmp_path / "telemetry.json"
        assert main(["run", str(self._write_sharded_spec(tmp_path)),
                     "--telemetry-out", str(out)]) == 0
        assert "telemetry snapshot written" in capsys.readouterr().err
        snapshot = json.loads(out.read_text())
        assert snapshot["counters"]["engine.elements"] == 6000
        assert snapshot["counters"]["scenario.stream_runs"] == 1
        assert snapshot["gauges"]["sharded.backend"] == "serial"
        loads = [value for name, value in snapshot["gauges"].items()
                 if name.startswith("sharded.shard_load.")]
        assert sum(loads) == 6000
        assert snapshot["histograms"]["engine.chunk_seconds"]["count"] > 0

    def test_run_without_telemetry_out_writes_nothing(self, tmp_path,
                                                      capsys):
        assert main(["run", str(self._write_sharded_spec(tmp_path))]) == 0
        assert "telemetry" not in capsys.readouterr().err

    def test_run_telemetry_out_with_worker_kill(self, tmp_path, capsys,
                                                monkeypatch):
        """End-to-end: socket run + mid-run worker kill; the snapshot file
        carries the supervisor counters and backend latency histograms."""
        import json
        from repro.engine import SocketBackend

        original = SocketBackend.dispatch
        calls = {"count": 0}

        def killing_dispatch(self, identifiers, shard_indices):
            calls["count"] += 1
            if calls["count"] == 3:
                victim = self._processes[0]
                victim.kill()
                victim.join(timeout=5.0)
            return original(self, identifiers, shard_indices)

        monkeypatch.setattr(SocketBackend, "dispatch", killing_dispatch)
        out = tmp_path / "telemetry.json"
        assert main(["run", str(self._write_sharded_spec(tmp_path)),
                     "--backend", "socket", "--workers", "2",
                     "--telemetry-out", str(out)]) == 0
        assert calls["count"] >= 3
        snapshot = json.loads(out.read_text())
        counters = snapshot["counters"]
        assert counters["backend.socket.respawns"] >= 1
        assert counters["backend.socket.respawn_attempts"] >= 1
        assert counters["engine.elements"] == 6000
        assert counters["worker.batch_elements"] == 6000
        assert (snapshot["histograms"]
                ["backend.socket.roundtrip_seconds.batch"]["count"] >= 1)
        assert snapshot["gauges"]["sharded.backend"] == "socket"
        loads = [value for name, value in snapshot["gauges"].items()
                 if name.startswith("sharded.shard_load.")]
        assert sum(loads) == 6000

    def test_log_level_flag(self, capsys):
        assert main(["--log-level", "WARNING", "list"]) == 0
        assert "throughput" in capsys.readouterr().out

    def test_log_level_rejects_unknown_levels(self, capsys):
        with pytest.raises(SystemExit):
            main(["--log-level", "LOUD", "list"])
