"""Tests for repro.metrics.divergence (KL divergence and the gain G_KL)."""

import math

import numpy as np
import pytest

from repro.metrics.distributions import FrequencyDistribution
from repro.metrics.divergence import (
    chi_square_statistic,
    cross_entropy,
    entropy,
    kl_divergence,
    kl_divergence_to_uniform,
    kl_gain,
    max_frequency_ratio,
    total_variation,
)
from repro.streams import IdentifierStream, peak_attack_stream, uniform_stream


class TestEntropy:
    def test_uniform_entropy(self):
        dist = FrequencyDistribution.uniform(range(16))
        assert entropy(dist) == pytest.approx(math.log(16))

    def test_degenerate_entropy(self):
        dist = FrequencyDistribution({1: 1.0}, support=[1, 2, 3])
        assert entropy(dist) == pytest.approx(0.0)

    def test_stream_input(self):
        stream = IdentifierStream(identifiers=[1, 2, 3, 4])
        assert entropy(stream) == pytest.approx(math.log(4))


class TestKLDivergence:
    def test_zero_for_identical_distributions(self):
        dist = FrequencyDistribution({1: 0.3, 2: 0.7})
        assert kl_divergence(dist, dist) == pytest.approx(0.0, abs=1e-12)

    def test_known_value(self):
        v = FrequencyDistribution({1: 0.75, 2: 0.25})
        w = FrequencyDistribution({1: 0.5, 2: 0.5})
        expected = 0.75 * math.log(1.5) + 0.25 * math.log(0.5)
        assert kl_divergence(v, w) == pytest.approx(expected)

    def test_non_negative(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            masses_v = rng.random(5) + 0.01
            masses_w = rng.random(5) + 0.01
            v = FrequencyDistribution(dict(enumerate(masses_v)))
            w = FrequencyDistribution(dict(enumerate(masses_w)))
            assert kl_divergence(v, w) >= -1e-12

    def test_decomposition_cross_entropy_minus_entropy(self):
        v = FrequencyDistribution({1: 0.6, 2: 0.3, 3: 0.1})
        w = FrequencyDistribution({1: 0.2, 2: 0.4, 3: 0.4})
        assert kl_divergence(v, w) == pytest.approx(
            cross_entropy(v, w) - entropy(v))

    def test_missing_support_penalised_not_infinite(self):
        v = FrequencyDistribution({1: 0.5, 2: 0.5})
        w = FrequencyDistribution({1: 1.0})
        value = kl_divergence(v, w)
        assert math.isfinite(value)
        assert value > 5

    def test_rejects_unknown_types(self):
        with pytest.raises(TypeError):
            kl_divergence({1: 0.5}, {1: 0.5})


class TestKLToUniformAndGain:
    def test_uniform_stream_near_zero_divergence(self):
        stream = uniform_stream(50_000, 20, random_state=0)
        assert kl_divergence_to_uniform(stream) < 0.01

    def test_peak_stream_high_divergence(self):
        stream = peak_attack_stream(20_000, 200, peak_fraction=0.5,
                                    random_state=1)
        assert kl_divergence_to_uniform(stream) > 1.0

    def test_gain_is_one_for_perfectly_uniform_output(self):
        biased = peak_attack_stream(10_000, 100, peak_fraction=0.5,
                                    random_state=2)
        uniform_output = IdentifierStream(
            identifiers=list(range(100)) * 100, universe=biased.universe)
        assert kl_gain(biased, uniform_output) == pytest.approx(1.0, abs=1e-6)

    def test_gain_is_zero_for_identity_sampler(self):
        biased = peak_attack_stream(10_000, 100, peak_fraction=0.5,
                                    random_state=3)
        assert kl_gain(biased, biased) == pytest.approx(0.0, abs=1e-9)

    def test_gain_negative_when_output_worse(self):
        biased = peak_attack_stream(10_000, 100, peak_fraction=0.3,
                                    random_state=4)
        worse = IdentifierStream(identifiers=[0] * 10_000,
                                 universe=biased.universe)
        assert kl_gain(biased, worse) < 0

    def test_gain_of_uniform_input(self):
        stream = uniform_stream(10_000, 10, random_state=5)
        assert 0.0 <= kl_gain(stream, stream) <= 1.0

    def test_out_of_support_identifiers_penalised_not_rejected(self):
        # a stream may carry identifiers outside an explicit support (nodes
        # that departed before T0 lingering in a sampler memory); their mass
        # is a uniformity violation and must score a heavy finite penalty
        from repro.streams.stream import IdentifierStream

        clean = IdentifierStream([0, 0, 1, 1], universe=[0, 1])
        stale = IdentifierStream([0, 0, 1, 99], universe=[0, 1, 99])
        clean_divergence = kl_divergence_to_uniform(clean, support=[0, 1])
        stale_divergence = kl_divergence_to_uniform(
            stale, support=[0, 1], penalise_out_of_support=True)
        assert np.isfinite(stale_divergence)
        assert stale_divergence > clean_divergence + 1.0
        # without the opt-in, a support mismatch keeps raising (the check
        # that catches forgotten sybil/universe extensions library-wide)
        with pytest.raises(ValueError, match="outside the support"):
            kl_divergence_to_uniform(stale, support=[0, 1])


class TestOtherDistances:
    def test_total_variation_bounds(self):
        v = FrequencyDistribution({1: 1.0}, support=[1, 2])
        w = FrequencyDistribution({2: 1.0}, support=[1, 2])
        assert total_variation(v, w) == pytest.approx(1.0)
        assert total_variation(v, v) == pytest.approx(0.0)

    def test_chi_square_zero_for_identical(self):
        dist = FrequencyDistribution({1: 0.5, 2: 0.5})
        assert chi_square_statistic(dist, dist) == pytest.approx(0.0)

    def test_chi_square_scales_with_sample_size(self):
        observed = FrequencyDistribution({1: 0.6, 2: 0.4})
        expected = FrequencyDistribution({1: 0.5, 2: 0.5})
        small = chi_square_statistic(observed, expected, sample_size=10)
        large = chi_square_statistic(observed, expected, sample_size=1000)
        assert large == pytest.approx(100 * small)

    def test_max_frequency_ratio(self):
        balanced = uniform_stream(10_000, 10, random_state=6)
        peaked = peak_attack_stream(10_000, 10, peak_fraction=0.5,
                                    random_state=6)
        assert max_frequency_ratio(balanced) < 1.5
        assert max_frequency_ratio(peaked) > 3.0
        assert max_frequency_ratio(IdentifierStream(identifiers=[])) == 0.0
