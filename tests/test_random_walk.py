"""Tests for repro.network.random_walk."""

import pytest

from repro.network.random_walk import RandomWalkConfig, RandomWalkSimulation


class TestRandomWalkConfig:
    def test_defaults(self):
        config = RandomWalkConfig()
        assert config.walk_length == 10
        assert config.walks_per_node == 1
        assert config.node_config is not None

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomWalkConfig(walk_length=0)
        with pytest.raises(ValueError):
            RandomWalkConfig(walks_per_node=0)


class TestRandomWalkSimulation:
    def test_population_composition(self):
        simulation = RandomWalkSimulation(8, 2, random_state=0)
        assert len(simulation.correct_ids) == 8
        assert len(simulation.malicious_ids) == 2

    def test_walks_deliver_identifiers(self):
        simulation = RandomWalkSimulation(12, 0, random_state=1)
        simulation.run(3)
        assert simulation.rounds_executed == 3
        total = sum(simulation.input_stream_of(identifier).size
                    for identifier in simulation.correct_ids)
        # 12 nodes x 1 walk x 10 hops x 3 rounds = 360 deliveries, a fraction
        # of which reach correct nodes.
        assert total > 100

    def test_output_matches_input_length(self):
        simulation = RandomWalkSimulation(8, 2, random_state=2)
        simulation.run(3)
        for identifier in simulation.correct_ids:
            assert (simulation.output_stream_of(identifier).size
                    == simulation.input_stream_of(identifier).size)

    def test_malicious_walks_amplified(self):
        config = RandomWalkConfig(walks_per_node=1, malicious_walks_per_node=5)
        simulation = RandomWalkSimulation(10, 3, config=config, random_state=3)
        simulation.run(5)
        malicious = set(simulation.malicious_ids) | set(
            simulation.sybil_identifiers)
        hits, total = 0, 0
        for identifier in simulation.correct_ids:
            stream = simulation.input_stream_of(identifier)
            total += stream.size
            hits += sum(1 for received in stream.identifiers
                        if received in malicious)
        assert total > 0
        assert hits / total > 0.3

    def test_malicious_node_stream_rejected(self):
        simulation = RandomWalkSimulation(4, 1, random_state=4)
        simulation.run(1)
        with pytest.raises(ValueError):
            simulation.output_stream_of(simulation.malicious_ids[0])

    def test_sybil_identifiers_appear_in_universe(self):
        simulation = RandomWalkSimulation(5, 1,
                                          sybil_identifiers_per_malicious=3,
                                          random_state=5)
        simulation.run(2)
        stream = simulation.input_stream_of(0)
        assert set(simulation.sybil_identifiers) <= set(stream.universe)

    def test_rejects_invalid_population(self):
        with pytest.raises(ValueError):
            RandomWalkSimulation(0, 0)
        with pytest.raises(ValueError):
            RandomWalkSimulation(5, -2)
