"""Tests for repro.experiments.reporting."""

from repro.experiments.reporting import (
    format_comparison,
    format_series,
    format_table,
)


class TestFormatTable:
    def test_empty(self):
        assert format_table([]) == "(empty table)"

    def test_renders_columns_and_rows(self):
        rows = [{"name": "a", "value": 1.23456}, {"name": "b", "value": 2}]
        text = format_table(rows)
        lines = text.splitlines()
        assert "name" in lines[0] and "value" in lines[0]
        assert "1.2346" in text
        assert len(lines) == 4  # header, separator, 2 rows

    def test_explicit_column_order(self):
        rows = [{"a": 1, "b": 2}]
        text = format_table(rows, columns=["b", "a"])
        header = text.splitlines()[0]
        assert header.index("b") < header.index("a")

    def test_missing_values_rendered_blank(self):
        rows = [{"a": 1}, {"a": 2, "b": 3}]
        text = format_table(rows, columns=["a", "b"])
        assert text.count("\n") == 3

    def test_custom_float_format(self):
        rows = [{"x": 0.123456}]
        text = format_table(rows, float_format="{:.1f}")
        assert "0.1" in text
        assert "0.12" not in text


class TestFormatSeries:
    def test_empty(self):
        assert format_series({}) == "(no series)"

    def test_aligns_series_on_union_of_x(self):
        series = {
            "first": [(1, 0.5), (2, 0.6)],
            "second": [(2, 0.7), (3, 0.8)],
        }
        text = format_series(series, x_label="k")
        lines = text.splitlines()
        assert lines[0].startswith("k")
        assert len(lines) == 2 + 3  # header + separator + 3 x values

    def test_float_rendering(self):
        series = {"s": [(1, 0.123456)]}
        assert "0.1235" in format_series(series)


class TestFormatComparison:
    def test_paper_vs_measured(self):
        text = format_comparison({"L_10_5": 38}, {"L_10_5": 38})
        assert "paper" in text
        assert "measured" in text
        assert text.count("38") >= 2

    def test_missing_measured_value(self):
        text = format_comparison({"x": 1.0}, {})
        assert "x" in text
