"""Tests for repro.adversary.attacks."""

import pytest

from repro.adversary.attacks import (
    AttackBudget,
    FloodingAttack,
    PeakAttack,
    SybilIdentifierFactory,
    TargetedAttack,
)


class TestSybilIdentifierFactory:
    def test_avoids_correct_identifiers(self):
        factory = SybilIdentifierFactory(correct_identifiers=range(100))
        generated = factory.generate(10)
        assert all(identifier >= 100 for identifier in generated)
        assert len(set(generated)) == 10

    def test_never_reuses_identifiers(self):
        factory = SybilIdentifierFactory(correct_identifiers=[0, 1])
        first = factory.generate(5)
        second = factory.generate(5)
        assert not set(first) & set(second)

    def test_custom_start(self):
        factory = SybilIdentifierFactory(correct_identifiers=[], start=1_000)
        assert factory.generate(3) == [1_000, 1_001, 1_002]

    def test_skips_taken_identifiers(self):
        factory = SybilIdentifierFactory(correct_identifiers=[5, 6], start=5)
        assert factory.generate(2) == [7, 8]

    def test_rejects_non_positive_count(self):
        factory = SybilIdentifierFactory(correct_identifiers=[])
        with pytest.raises(ValueError):
            factory.generate(0)


class TestAttackBudget:
    def test_total_insertions(self):
        budget = AttackBudget(distinct_identifiers=10, repetitions=3)
        assert budget.total_insertions == 30

    def test_validation(self):
        with pytest.raises(ValueError):
            AttackBudget(distinct_identifiers=0)
        with pytest.raises(ValueError):
            AttackBudget(distinct_identifiers=1, repetitions=0)


class TestTargetedAttack:
    def test_generates_requested_budget(self):
        factory = SybilIdentifierFactory(correct_identifiers=range(10))
        attack = TargetedAttack(3, AttackBudget(5, repetitions=4), factory)
        insertions = attack.generate_insertions(random_state=0)
        assert insertions.size == 20
        assert len(set(insertions.identifiers)) == 5
        assert insertions.malicious == sorted(attack.malicious_identifiers)

    def test_malicious_identifiers_stable(self):
        factory = SybilIdentifierFactory(correct_identifiers=range(10))
        attack = TargetedAttack(3, AttackBudget(5), factory)
        assert attack.malicious_identifiers == attack.malicious_identifiers

    def test_target_not_among_malicious(self):
        factory = SybilIdentifierFactory(correct_identifiers=range(10))
        attack = TargetedAttack(3, AttackBudget(5), factory)
        assert 3 not in attack.malicious_identifiers


class TestFloodingAttack:
    def test_generates_requested_budget(self):
        factory = SybilIdentifierFactory(correct_identifiers=range(10))
        attack = FloodingAttack(AttackBudget(8, repetitions=2), factory)
        insertions = attack.generate_insertions(random_state=1)
        assert insertions.size == 16
        assert len(set(insertions.identifiers)) == 8

    def test_each_identifier_repeated(self):
        factory = SybilIdentifierFactory(correct_identifiers=[])
        attack = FloodingAttack(AttackBudget(4, repetitions=3), factory)
        insertions = attack.generate_insertions(random_state=2)
        for count in insertions.frequencies().values():
            assert count == 3


class TestPeakAttack:
    def test_single_identifier_repeated(self):
        factory = SybilIdentifierFactory(correct_identifiers=range(5))
        attack = PeakAttack(1_000, factory)
        insertions = attack.generate_insertions()
        assert insertions.size == 1_000
        assert len(set(insertions.identifiers)) == 1
        assert insertions.malicious == [attack.peak_identifier]

    def test_explicit_peak_identifier(self):
        factory = SybilIdentifierFactory(correct_identifiers=range(5))
        attack = PeakAttack(10, factory, peak_identifier=42)
        assert attack.peak_identifier == 42

    def test_rejects_non_positive_frequency(self):
        factory = SybilIdentifierFactory(correct_identifiers=[])
        with pytest.raises(ValueError):
            PeakAttack(0, factory)
