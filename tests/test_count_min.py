"""Tests for repro.sketches.count_min (Algorithm 2)."""

import math

import numpy as np
import pytest

from repro.sketches.count_min import (
    CountMinSketch,
    ExactFrequencyCounter,
    dimensions_from_error,
)


class TestDimensionsFromError:
    def test_paper_parameterisation(self):
        width, depth = dimensions_from_error(epsilon=0.3, delta=1e-2)
        assert width == math.ceil(math.e / 0.3)
        assert depth == math.ceil(math.log(1e2))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            dimensions_from_error(0.0, 0.1)
        with pytest.raises(ValueError):
            dimensions_from_error(0.1, 1.0)


class TestCountMinSketch:
    def test_estimate_never_underestimates(self):
        sketch = CountMinSketch(width=16, depth=4, random_state=0)
        items = [1, 2, 2, 3, 3, 3, 4, 4, 4, 4]
        sketch.update_many(items)
        for item, true_count in [(1, 1), (2, 2), (3, 3), (4, 4)]:
            assert sketch.estimate(item) >= true_count

    def test_exact_when_no_collision(self):
        sketch = CountMinSketch(width=256, depth=6, random_state=1)
        sketch.update(7, count=13)
        assert sketch.estimate(7) == 13

    def test_error_bound_holds_on_random_stream(self):
        rng = np.random.default_rng(2)
        sketch = CountMinSketch.from_error(epsilon=0.05, delta=0.01,
                                           random_state=2)
        items = rng.integers(0, 200, size=5_000)
        true_counts = {}
        for item in items:
            item = int(item)
            true_counts[item] = true_counts.get(item, 0) + 1
            sketch.update(item)
        bound = sketch.error_bound()
        violations = sum(
            1 for item, count in true_counts.items()
            if sketch.estimate(item) > count + bound
        )
        # delta = 0.01: essentially no violations expected over 200 items.
        assert violations <= 2

    def test_total_tracks_updates(self):
        sketch = CountMinSketch(width=8, depth=2, random_state=0)
        sketch.update(1)
        sketch.update(2, count=5)
        assert sketch.total == 6
        assert len(sketch) == 6

    def test_min_cell_zero_when_empty(self):
        sketch = CountMinSketch(width=8, depth=2, random_state=0)
        assert sketch.min_cell() == 0

    def test_min_cell_ignores_untouched_cells(self):
        sketch = CountMinSketch(width=64, depth=4, random_state=0)
        sketch.update(1, count=10)
        sketch.update(2, count=20)
        # Most cells are untouched but min_cell reports the smallest counter
        # actually carrying an observed identifier.
        assert sketch.min_cell() == 10

    def test_min_cell_bounded_by_rarest_frequency(self):
        sketch = CountMinSketch(width=32, depth=4, random_state=3)
        sketch.update(1, count=100)
        sketch.update(2, count=5)
        assert 0 < sketch.min_cell() <= sketch.estimate(2)

    def test_unknown_item_estimate_is_spurious_but_nonnegative(self):
        sketch = CountMinSketch(width=16, depth=4, random_state=4)
        sketch.update_many(range(20))
        assert sketch.estimate(10_000) >= 0

    def test_update_rejects_non_positive_count(self):
        sketch = CountMinSketch(width=8, depth=2, random_state=0)
        with pytest.raises(ValueError):
            sketch.update(1, count=0)

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ValueError):
            CountMinSketch(width=0, depth=2)
        with pytest.raises(ValueError):
            CountMinSketch(width=2, depth=0)

    def test_table_is_read_only(self):
        sketch = CountMinSketch(width=8, depth=2, random_state=0)
        sketch.update(1)
        with pytest.raises(ValueError):
            sketch.table[0, 0] = 99

    def test_merge_same_hash_functions(self):
        sketch = CountMinSketch(width=16, depth=4, random_state=5)
        other = sketch.copy_empty()
        sketch.update(1, count=3)
        other.update(1, count=4)
        sketch.merge(other)
        assert sketch.estimate(1) >= 7
        assert sketch.total == 7

    def test_merge_rejects_different_sketches(self):
        first = CountMinSketch(width=16, depth=4, random_state=6)
        second = CountMinSketch(width=16, depth=4, random_state=7)
        with pytest.raises(ValueError):
            first.merge(second)
        third = CountMinSketch(width=8, depth=4, random_state=6)
        with pytest.raises(ValueError):
            first.merge(third)

    def test_epsilon_delta_properties(self):
        sketch = CountMinSketch(width=28, depth=5, random_state=0)
        assert sketch.epsilon == pytest.approx(math.e / 28)
        assert sketch.delta == pytest.approx(math.exp(-5))


class TestExactFrequencyCounter:
    def test_exact_counts(self):
        counter = ExactFrequencyCounter()
        counter.update_many([1, 1, 2, 3, 3, 3])
        assert counter.estimate(1) == 2
        assert counter.estimate(2) == 1
        assert counter.estimate(3) == 3
        assert counter.estimate(99) == 0

    def test_min_cell_is_rarest_frequency(self):
        counter = ExactFrequencyCounter()
        counter.update(1, count=10)
        counter.update(2, count=3)
        assert counter.min_cell() == 3

    def test_min_cell_empty(self):
        assert ExactFrequencyCounter().min_cell() == 0

    def test_distinct_and_total(self):
        counter = ExactFrequencyCounter()
        counter.update_many([5, 5, 6])
        assert counter.distinct == 2
        assert counter.total == 3

    def test_frequencies_returns_copy(self):
        counter = ExactFrequencyCounter()
        counter.update(1)
        table = counter.frequencies()
        table[1] = 999
        assert counter.estimate(1) == 1

    def test_rejects_non_positive_count(self):
        with pytest.raises(ValueError):
            ExactFrequencyCounter().update(1, count=-1)
