"""Tests for repro.engine.batch (the batch streaming execution engine).

The engine's central contract — the batch driver produces exactly the output
stream the per-element driver produces for the same seed — is what makes it
safe for the experiment harness to run every figure on the vectorised path.
The seed-determinism tests below are the regression guard for that contract.
"""

import numpy as np
import pytest

from repro.core import (
    AdaptiveKnowledgeFreeStrategy,
    KnowledgeFreeStrategy,
    MinWiseSampler,
    NodeSamplingService,
    ReservoirSampler,
)
from repro.engine import (
    BatchResult,
    as_identifier_array,
    iter_batches,
    run_stream,
    run_stream_scalar,
)
from repro.sketches import CountSketch, ExactFrequencyCounter
from repro.streams import zipf_stream

STREAM = zipf_stream(8_000, 1_000, alpha=1.5, random_state=17)


def _knowledge_free(seed=5):
    return KnowledgeFreeStrategy(12, sketch_width=32, sketch_depth=4,
                                 random_state=seed)


class TestSeedDeterminism:
    """Same random_state => identical outputs through both drivers."""

    def test_knowledge_free_scalar_equals_batch(self):
        scalar = run_stream_scalar(_knowledge_free(), STREAM)
        batch = run_stream(_knowledge_free(), STREAM, batch_size=1024)
        assert np.array_equal(scalar.outputs, batch.outputs)

    def test_knowledge_free_sketch_state_matches(self):
        scalar_strategy = _knowledge_free()
        batch_strategy = _knowledge_free()
        run_stream_scalar(scalar_strategy, STREAM)
        run_stream(batch_strategy, STREAM, batch_size=512)
        assert np.array_equal(scalar_strategy.frequency_oracle.table,
                              batch_strategy.frequency_oracle.table)
        assert (scalar_strategy.frequency_oracle.min_cell()
                == batch_strategy.frequency_oracle.min_cell())
        assert scalar_strategy.memory == batch_strategy.memory

    def test_chunk_size_invariance(self):
        reference = run_stream(_knowledge_free(), STREAM, batch_size=4096)
        for batch_size in (1, 7, 97, 1000):
            result = run_stream(_knowledge_free(), STREAM,
                                batch_size=batch_size)
            assert np.array_equal(reference.outputs, result.outputs), batch_size

    @pytest.mark.parametrize("factory", [
        lambda: ReservoirSampler(12, random_state=5),
        lambda: MinWiseSampler(8, random_state=5),
        lambda: AdaptiveKnowledgeFreeStrategy(12, initial_sketch_width=16,
                                              sketch_depth=4, random_state=5),
    ], ids=["reservoir", "minwise", "adaptive"])
    def test_fallback_strategies_scalar_equals_batch(self, factory):
        scalar = run_stream_scalar(factory(), STREAM)
        batch = run_stream(factory(), STREAM, batch_size=640)
        assert np.array_equal(scalar.outputs, batch.outputs)

    @pytest.mark.parametrize("oracle_factory", [
        lambda: CountSketch(width=32, depth=5, random_state=3),
        lambda: ExactFrequencyCounter(),
    ], ids=["count-sketch", "exact"])
    def test_alternative_oracles_fall_back_exactly(self, oracle_factory):
        def build():
            return KnowledgeFreeStrategy(
                10, frequency_oracle=oracle_factory(), random_state=23)

        scalar = run_stream_scalar(build(), STREAM)
        batch = run_stream(build(), STREAM, batch_size=256)
        assert np.array_equal(scalar.outputs, batch.outputs)

    def test_elements_processed_advances_identically(self):
        strategy = _knowledge_free()
        run_stream(strategy, STREAM, batch_size=300)
        assert strategy.elements_processed == STREAM.size


class TestRunStream:
    def test_batch_result_accounting(self):
        result = run_stream(_knowledge_free(), STREAM, batch_size=1000)
        assert isinstance(result, BatchResult)
        assert result.elements == STREAM.size
        assert result.batches == (STREAM.size + 999) // 1000
        assert result.batch_size == 1000
        assert result.outputs.dtype == np.int64
        assert result.outputs.size == STREAM.size
        assert result.elapsed_seconds > 0
        assert result.throughput > 0

    def test_output_stream_propagates_metadata(self):
        result = run_stream(_knowledge_free(), STREAM, batch_size=512)
        output = result.output_stream(STREAM, label="kf(test)")
        assert output.universe == STREAM.universe
        assert output.label == "kf(test)"
        assert output.size == STREAM.size

    def test_empty_stream(self):
        result = run_stream(_knowledge_free(), [], batch_size=64)
        assert result.elements == 0
        assert result.batches == 0
        assert result.outputs.size == 0
        assert result.throughput == 0.0

    def test_drives_service_through_on_receive_batch(self):
        service = NodeSamplingService(_knowledge_free())
        result = run_stream(service, STREAM, batch_size=2048)
        assert result.outputs.size == STREAM.size
        assert service.output_stream.size == STREAM.size
        # the recorded output is exactly what the driver returned
        assert service.output_stream.identifiers == result.outputs.tolist()

    def test_rejects_invalid_batch_size(self):
        with pytest.raises(ValueError):
            run_stream(_knowledge_free(), STREAM, batch_size=0)

    def test_rejects_target_without_batch_interface(self):
        with pytest.raises(TypeError):
            run_stream(object(), STREAM)
        with pytest.raises(TypeError):
            run_stream_scalar(object(), STREAM)


class TestHelpers:
    def test_as_identifier_array(self):
        assert as_identifier_array(STREAM).dtype == np.int64
        assert as_identifier_array([1, 2, 3]).tolist() == [1, 2, 3]
        arr = np.array([4, 5], dtype=np.int32)
        assert as_identifier_array(arr).dtype == np.int64

    def test_iter_batches_covers_stream(self):
        identifiers = as_identifier_array(range(10))
        chunks = list(iter_batches(identifiers, 4))
        assert [len(chunk) for chunk in chunks] == [4, 4, 2]
        assert np.concatenate(chunks).tolist() == list(range(10))

    def test_iter_batches_validates(self):
        with pytest.raises(ValueError):
            list(iter_batches(as_identifier_array([1]), 0))


class TestServiceBatchInterface:
    def test_on_receive_batch_equals_on_receive_loop(self):
        scalar_service = NodeSamplingService(_knowledge_free())
        batch_service = NodeSamplingService(_knowledge_free())
        for identifier in STREAM:
            scalar_service.on_receive(identifier)
        batch_service.consume(STREAM, batch_size=777)
        assert (scalar_service.output_stream.identifiers
                == batch_service.output_stream.identifiers)
        assert (scalar_service.output_frequencies()
                == batch_service.output_frequencies())

    def test_consume_rejects_bad_batch_size(self):
        service = NodeSamplingService(_knowledge_free())
        with pytest.raises(ValueError):
            service.consume(STREAM, batch_size=0)
