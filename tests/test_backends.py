"""Tests for repro.engine.backends (pluggable execution backends).

The headline guarantee under test: per master seed, the process and socket
backends' outputs, merged memory, shard loads and samples are bit-identical
to the serial backend's, so every experiment can run on any of them.  The
socket backend additionally supervises its workers: a killed worker is
re-spawned and its shards rebuilt from the last state snapshot plus a
bounded journal replay, which the crash tests assert end-to-end.
"""

import json
import multiprocessing
import os
import socket as socket_module
import threading
import time
from dataclasses import replace
from pathlib import Path

import numpy as np
import pytest

from repro.cli import main
from repro.engine import (
    AuthenticationError,
    BackendError,
    KnowledgeFreeShardFactory,
    ShardedSamplingService,
    SocketBackend,
    WorkerCrashError,
    WorkerServer,
    WorkerTimeoutError,
    make_backend,
    run_stream,
)
from repro.engine.backends.serial import SerialBackend
from repro.scenarios import ScenarioRunner, ScenarioSpec
from repro.scenarios.registry import ScenarioError
from repro.scenarios.spec import EngineSpec
from repro.streams import zipf_stream
from repro.utils.rng import spawn_children

STREAM = zipf_stream(8_000, 1_000, alpha=1.3, random_state=17)

EXAMPLES = Path(__file__).resolve().parent.parent / "examples" / "scenarios"

#: The non-serial backends; every bit-identity test runs once per entry.
PARALLEL_BACKENDS = ["process", "socket"]


def _service(backend, seed=23, shards=4, **kwargs):
    return ShardedSamplingService.knowledge_free(
        shards=shards, memory_size=10, sketch_width=32, sketch_depth=4,
        random_state=seed, backend=backend, **kwargs)


# --------------------------------------------------------------------- #
# Worker-side helpers (module-level so process backends can ship them)
# --------------------------------------------------------------------- #
class _MuteStrategy:
    """Stands in for a custom strategy holding an empty sampling memory."""

    memory_view = ()


class _MuteService:
    """Shard service that ingests traffic but never yields a sample.

    Exercises the per-sample fallback of ``sample_many``: the shard has
    loads but an empty memory, so the bulk path must step aside for the
    redraw loop (which decides which coins are consumed).
    """

    def __init__(self):
        self.elements_processed = 0
        self.strategy = _MuteStrategy()

    def on_receive_batch(self, identifiers):
        chunk = np.asarray(identifiers, dtype=np.int64)
        self.elements_processed += int(chunk.size)
        return chunk

    def sample(self):
        return None

    def reset(self):
        self.elements_processed = 0


def _mute_factory(index, rng):
    return _MuteService()


class _SleepyService:
    """Shard service whose batch ingestion stalls (timeout-path fixture)."""

    elements_processed = 0

    def on_receive_batch(self, identifiers):
        time.sleep(1.0)
        return np.asarray(identifiers, dtype=np.int64)


def _sleepy_factory(index, rng):
    return _SleepyService()


def _broken_factory(index, rng):
    raise RuntimeError("shard construction boom")


class _SuicidalService:
    """Shard service that hard-kills its worker process on every batch."""

    elements_processed = 0

    def on_receive_batch(self, identifiers):
        os._exit(13)


def _suicidal_factory(index, rng):
    return _SuicidalService()


def _broken_on_shard_one_factory(index, rng):
    if index == 1:
        raise RuntimeError("shard 1 construction boom")
    return _MuteService()


def _live_shard_workers():
    """Names of still-running backend worker processes of this process."""
    return sorted(child.name for child in multiprocessing.active_children()
                  if child.name.startswith(("repro-shard-worker",
                                            "repro-socket-worker")))


def _assert_no_leaked_workers(timeout=10.0):
    """Assert every backend worker process exits within ``timeout``."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if not _live_shard_workers():
            return
        time.sleep(0.05)
    raise AssertionError(f"leaked worker processes: {_live_shard_workers()}")


def _server_process_main(report, token):
    """Run a WorkerServer in a dedicated process (killable in tests)."""
    server = WorkerServer("127.0.0.1", 0, token)
    report.send(server.address)
    report.close()
    server.serve_forever()


def _spawn_server_process(token):
    """Start a WorkerServer process; return ``(process, "host:port")``."""
    context = multiprocessing.get_context()
    receive_end, send_end = context.Pipe(duplex=False)
    process = context.Process(target=_server_process_main,
                              args=(send_end, token), daemon=True)
    process.start()
    send_end.close()
    assert receive_end.poll(30.0), "worker server did not report its port"
    host, port = receive_end.recv()
    receive_end.close()
    return process, f"{host}:{port}"


@pytest.fixture
def worker_server():
    """An in-process threaded WorkerServer with a known token."""
    server = WorkerServer("127.0.0.1", 0, b"test-secret")
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.close()


# --------------------------------------------------------------------- #
# Cross-backend bit-identity
# --------------------------------------------------------------------- #
class TestBitIdentity:
    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    def test_outputs_memory_and_loads_match_serial(self, backend):
        serial = _service("serial")
        with _service(backend, workers=2) as parallel:
            serial_run = run_stream(serial, STREAM, batch_size=512)
            parallel_run = run_stream(parallel, STREAM, batch_size=512)
            assert np.array_equal(serial_run.outputs, parallel_run.outputs)
            assert serial.merged_memory() == parallel.merged_memory()
            assert serial.shard_loads() == parallel.shard_loads()
            assert serial.elements_processed == parallel.elements_processed

    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    def test_samples_match_serial(self, backend):
        serial = _service("serial", seed=31)
        with _service(backend, seed=31, workers=3) as parallel:
            serial.on_receive_batch(STREAM.identifiers)
            parallel.on_receive_batch(STREAM.identifiers)
            assert serial.sample_many(250) == parallel.sample_many(250)
            assert serial.sample() == parallel.sample()

    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    def test_worker_loads_agree_with_parent_cache(self, backend):
        with _service(backend, workers=2) as parallel:
            parallel.on_receive_batch(STREAM.identifiers)
            assert parallel.backend.cached_loads() == parallel.shard_loads()

    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    def test_reset_keeps_backends_aligned(self, backend):
        serial = _service("serial", seed=7)
        with _service(backend, seed=7, workers=2) as parallel:
            for service in (serial, parallel):
                service.on_receive_batch(STREAM.identifiers)
                service.reset()
            assert parallel.elements_processed == 0
            assert parallel.sample() is None
            a = serial.on_receive_batch(STREAM.identifiers[:1000])
            b = parallel.on_receive_batch(STREAM.identifiers[:1000])
            assert np.array_equal(a, b)

    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    def test_scenario_results_match_across_backends(self, backend):
        base = {
            "name": "backend-equality",
            "seed": 99,
            "trials": 2,
            "stream": {"kind": "zipf",
                       "params": {"stream_size": 5000,
                                  "population_size": 500, "alpha": 1.5}},
            "strategies": [{"kind": "knowledge-free",
                            "params": {"memory_size": 10,
                                       "sketch_width": 16,
                                       "sketch_depth": 4}}],
            "engine": {"driver": "batch", "batch_size": 1024, "shards": 3,
                       "backend": "serial"},
        }
        serial_result = ScenarioRunner(dict(base)).run().to_dict()
        parallel = dict(base)
        parallel["engine"] = dict(base["engine"],
                                  backend=backend, workers=2)
        parallel_result = ScenarioRunner(parallel).run().to_dict()
        serial_result["name"] = parallel_result["name"] = "backend-equality"
        assert serial_result == parallel_result

    def test_sharded_zipf_scenario_socket_matches_serial(self):
        # the committed example spec, serial vs socket, end to end
        spec = replace(ScenarioSpec.load(EXAMPLES / "sharded_zipf.json"),
                       trials=1)
        serial_result = ScenarioRunner(spec).run().to_dict()
        socket_spec = replace(
            spec, engine=replace(spec.engine, backend="socket", workers=2))
        socket_result = ScenarioRunner(socket_spec).run().to_dict()
        assert serial_result == socket_result


class TestBulkSampleMany:
    @pytest.mark.parametrize("backend", ["serial"] + PARALLEL_BACKENDS)
    def test_bulk_path_matches_per_sample_loop(self, backend):
        reference = _service("serial", seed=41)
        reference.on_receive_batch(STREAM.identifiers)
        looped = [reference.sample() for _ in range(137)]
        with _service(backend, seed=41) as bulk:
            bulk.on_receive_batch(STREAM.identifiers)
            assert bulk.sample_many(137) == looped

    @pytest.mark.parametrize("backend", ["serial"] + PARALLEL_BACKENDS)
    def test_empty_memory_fallback(self, backend):
        with ShardedSamplingService(2, _mute_factory, random_state=5,
                                    backend=backend) as service:
            service.on_receive_batch(STREAM.identifiers[:100])
            with pytest.raises(RuntimeError, match="0 sample"):
                service.sample_many(5)
            assert service.sample_many(5, strict=False) == []


# --------------------------------------------------------------------- #
# Worker failure paths
# --------------------------------------------------------------------- #
class TestWorkerFailures:
    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    def test_construction_error_surfaces(self, backend):
        with pytest.raises(WorkerCrashError, match="shard construction boom"):
            ShardedSamplingService(2, _broken_factory, random_state=3,
                                   backend=backend)

    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    def test_construction_error_does_not_leak_sibling_workers(self, backend):
        # regression: a failed startup used to propagate without
        # terminating the sibling workers already spawned
        with pytest.raises(WorkerCrashError, match="shard 1"):
            ShardedSamplingService(2, _broken_on_shard_one_factory,
                                   random_state=3, backend=backend,
                                   workers=2)
        _assert_no_leaked_workers()

    def test_dead_worker_detected(self):
        service = _service("process", shards=2, workers=2)
        try:
            service.on_receive_batch(STREAM.identifiers[:500])
            for process in service.backend._processes:
                process.terminate()
                process.join(timeout=5.0)
            # depending on timing the parent sees the broken pipe at send
            # time or the dead process in the reply poll loop
            with pytest.raises(WorkerCrashError, match="worker"):
                service.on_receive_batch(STREAM.identifiers[:500])
        finally:
            service.close()

    def test_process_worker_crash_mid_dispatch(self):
        # the crash lands while the batch request is in flight
        service = ShardedSamplingService(2, _sleepy_factory, random_state=3,
                                         backend="process", workers=2)
        try:
            processes = list(service.backend._processes)
            killer = threading.Timer(
                0.3, lambda: [process.terminate() for process in processes])
            killer.start()
            with pytest.raises(WorkerCrashError):
                service.on_receive_batch(STREAM.identifiers[:64])
            killer.join()
        finally:
            service.close()

    def test_worker_timeout(self):
        service = ShardedSamplingService(2, _sleepy_factory, random_state=3,
                                         backend="process",
                                         worker_timeout=0.1)
        try:
            with pytest.raises(WorkerTimeoutError, match="did not reply"):
                service.on_receive_batch(STREAM.identifiers[:64])
        finally:
            service.close()

    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    def test_hung_worker_hits_default_deadline(self, backend, monkeypatch):
        # regression: with worker_timeout=None a live-but-hung worker used
        # to block _receive forever; the default request deadline must
        # surface WorkerTimeoutError on both worker transports
        monkeypatch.setattr("repro.engine.backends.base."
                            "DEFAULT_REQUEST_TIMEOUT", 0.2)
        service = ShardedSamplingService(2, _sleepy_factory, random_state=3,
                                         backend=backend, workers=2)
        try:
            with pytest.raises(WorkerTimeoutError, match="did not reply"):
                service.on_receive_batch(STREAM.identifiers[:64])
        finally:
            service.close()

    def test_timeout_poisons_backend_against_stale_replies(self):
        # regression: the timed-out request's late reply stays queued in the
        # pipe; a retry used to consume it as the answer to the new request
        service = ShardedSamplingService(2, _sleepy_factory, random_state=3,
                                         backend="process",
                                         worker_timeout=0.1)
        try:
            with pytest.raises(WorkerTimeoutError):
                service.on_receive_batch(STREAM.identifiers[:64])
            with pytest.raises(WorkerCrashError, match="desynchronised"):
                service.on_receive_batch(STREAM.identifiers[:32])
            with pytest.raises(WorkerCrashError, match="desynchronised"):
                service.shard_loads()
        finally:
            service.close()

    @pytest.mark.parametrize("backend", ["serial"] + PARALLEL_BACKENDS)
    def test_close_is_idempotent(self, backend):
        service = _service(backend, shards=2)
        service.close()
        service.close()

    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    def test_closed_backend_rejects_requests(self, backend):
        service = _service(backend, shards=2)
        service.close()
        with pytest.raises(BackendError, match="closed"):
            service.on_receive_batch(STREAM.identifiers[:10])

    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    def test_close_after_worker_crash(self, backend):
        # close() must stay safe (and idempotent) over dead workers and
        # dead connections
        service = _service(backend, shards=2, workers=2)
        service.on_receive_batch(STREAM.identifiers[:200])
        for process in service.backend._processes:
            process.kill()
            process.join(timeout=5.0)
        service.close()
        service.close()
        _assert_no_leaked_workers()


# --------------------------------------------------------------------- #
# Socket-backend supervision: re-spawn, snapshots, bounded replay
# --------------------------------------------------------------------- #
class TestSocketSupervision:
    def test_worker_killed_mid_run_recovers_bit_identical(self):
        serial = _service("serial", seed=23)
        ids = np.asarray(STREAM.identifiers, dtype=np.int64)
        with _service("socket", seed=23, workers=2) as service:
            a1 = serial.on_receive_batch(ids[:4000])
            b1 = service.on_receive_batch(ids[:4000])
            victim = service.backend._processes[0]
            victim.kill()
            victim.join(timeout=5.0)
            a2 = serial.on_receive_batch(ids[4000:])
            b2 = service.on_receive_batch(ids[4000:])
            assert np.array_equal(a1, b1)
            assert np.array_equal(a2, b2)
            assert service.backend.respawns >= 1
            assert serial.merged_memory() == service.merged_memory()
            assert serial.shard_loads() == service.shard_loads()
            assert serial.sample_many(100) == service.sample_many(100)

    def test_stats_proxies_serial_identical_after_recovery(self):
        # every inspection proxy — shard loads, per-shard memory sizes and
        # the merged memory — answers from the *rebuilt* workers, so a
        # mid-run kill must leave them serial-identical, repeatedly
        serial = _service("serial", seed=23)
        ids = np.asarray(STREAM.identifiers, dtype=np.int64)
        with _service("socket", seed=23, workers=2) as service:
            for round_number, (start, stop) in enumerate(
                    [(0, 3000), (3000, 6000), (6000, 8000)]):
                serial.on_receive_batch(ids[start:stop])
                service.on_receive_batch(ids[start:stop])
                assert serial.shard_loads() == service.shard_loads()
                assert serial.memory_sizes() == service.memory_sizes()
                assert serial.merged_memory() == service.merged_memory()
                if round_number < 2:  # kill a different worker each round
                    victim = service.backend._processes[round_number % 2]
                    victim.kill()
                    victim.join(timeout=5.0)
            assert service.backend.respawns >= 2

    def test_socket_worker_crash_mid_dispatch_recovers(self):
        # the kill lands while the batch request is in flight; the
        # supervisor re-spawns the worker and replays it transparently
        service = ShardedSamplingService(2, _sleepy_factory, random_state=3,
                                         backend="socket", workers=2)
        try:
            victim = service.backend._processes[0]
            killer = threading.Timer(0.2, victim.kill)
            killer.start()
            outputs = service.on_receive_batch(STREAM.identifiers[:64])
            killer.join()
            assert np.array_equal(
                np.sort(outputs),
                np.sort(np.asarray(STREAM.identifiers[:64], dtype=np.int64)))
            assert service.backend.respawns >= 1
        finally:
            service.close()

    def test_snapshot_bounds_the_replay_after_a_kill(self):
        factory = KnowledgeFreeShardFactory(10, sketch_width=32,
                                            sketch_depth=4)
        serial = SerialBackend(4, factory, spawn_children(7, 4))
        backend = SocketBackend(4, factory, spawn_children(7, 4), workers=2,
                                snapshot_every=2)
        ids = np.asarray(STREAM.identifiers, dtype=np.int64)
        try:
            for start in range(0, 4000, 500):
                chunk = ids[start:start + 500]
                assert np.array_equal(
                    serial.dispatch(chunk, chunk % 4),
                    backend.dispatch(chunk, chunk % 4))
            # snapshots were collected, so the journal stays bounded
            assert all(blob is not None for blob in backend._snapshots)
            assert all(len(journal) <= 2 for journal in backend._journals)
            victim = backend._processes[1]
            victim.kill()
            victim.join(timeout=5.0)
            for start in range(4000, 8000, 500):
                chunk = ids[start:start + 500]
                assert np.array_equal(
                    serial.dispatch(chunk, chunk % 4),
                    backend.dispatch(chunk, chunk % 4))
            assert backend.respawns >= 1
            assert serial.merged_memory() == backend.merged_memory()
        finally:
            backend.close()

    def test_deterministically_crashing_request_is_bounded(self):
        # a request that kills its worker on every attempt must not
        # re-spawn forever: after max_respawns recoveries the crash surfaces
        backend = SocketBackend(2, _suicidal_factory, spawn_children(3, 2),
                                workers=2, max_respawns=2)
        try:
            chunk = np.arange(50, dtype=np.int64)
            with pytest.raises(WorkerCrashError, match="crashed"):
                backend.dispatch(chunk, chunk % 2)
        finally:
            backend.close()
        _assert_no_leaked_workers()

    def test_remote_endpoint_lost_for_good_is_bounded(self):
        # a remote endpoint (not backend-owned) cannot be re-spawned: after
        # max_respawns reconnect attempts the failure surfaces
        process, endpoint = _spawn_server_process(b"test-secret")
        backend = SocketBackend(2, _mute_factory, spawn_children(3, 2),
                                workers=2, endpoints=[endpoint],
                                auth_token=b"test-secret", max_respawns=2)
        try:
            chunk = np.arange(100, dtype=np.int64)
            backend.dispatch(chunk, chunk % 2)
            process.kill()
            process.join(timeout=5.0)
            with pytest.raises(WorkerCrashError,
                               match="could not be re-spawned after 2"):
                backend.dispatch(chunk, chunk % 2)
        finally:
            backend.close()
            if process.is_alive():  # pragma: no cover - defensive
                process.kill()

    def test_remote_endpoints_match_serial(self, worker_server):
        host, port = worker_server.address
        endpoint = f"{host}:{port}"
        serial = _service("serial", seed=23)
        with _service("socket", seed=23, workers=2,
                      endpoints=[endpoint],
                      auth_token=b"test-secret") as remote:
            a = serial.on_receive_batch(STREAM.identifiers[:2000])
            b = remote.on_receive_batch(STREAM.identifiers[:2000])
            assert np.array_equal(a, b)
            assert serial.merged_memory() == remote.merged_memory()

    def test_bad_auth_token_rejected(self, worker_server):
        # a token mismatch fails the mutual handshake on the client side
        # (the server's HMAC cannot be verified) before anything untrusted
        # is unpickled
        host, port = worker_server.address
        with pytest.raises(AuthenticationError, match="prove knowledge"):
            _service("socket", workers=2, endpoints=[f"{host}:{port}"],
                     auth_token=b"not-the-secret")
        _assert_no_leaked_workers()

    def test_non_worker_endpoint_rejected_without_unpickling(self):
        # a port squatter that speaks the framing but not the handshake is
        # refused: its bytes never reach pickle.loads on the parent side
        import struct as struct_module

        listener = socket_module.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        host, port = listener.getsockname()[:2]

        def impostor():
            connection, _ = listener.accept()
            connection.recv(4096)  # the client's nonce
            evil = b"arbitrary-not-a-valid-handshake-reply"
            connection.sendall(struct_module.pack(">Q", len(evil)) + evil)
            connection.close()

        thread = threading.Thread(target=impostor, daemon=True)
        thread.start()
        try:
            with pytest.raises(AuthenticationError, match="prove knowledge"):
                _service("socket", workers=1, shards=1,
                         endpoints=[f"{host}:{port}"],
                         auth_token=b"whatever")
        finally:
            listener.close()

    def test_remote_endpoints_require_auth_token(self):
        with pytest.raises(ValueError, match="auth token"):
            SocketBackend(2, _mute_factory, spawn_children(3, 2),
                          endpoints=["127.0.0.1:9"])


# --------------------------------------------------------------------- #
# WorkerServer shutdown
# --------------------------------------------------------------------- #
class TestWorkerServerShutdown:

    def test_close_wakes_blocked_accept_loop_promptly(self):
        """close() from another thread must not wait out poll_interval."""
        server = WorkerServer("127.0.0.1", 0, b"test-secret")
        thread = threading.Thread(
            target=server.serve_forever,
            kwargs={"poll_interval": 30.0}, daemon=True)
        thread.start()
        time.sleep(0.2)  # let the loop block in select()
        started = time.monotonic()
        server.close()
        thread.join(timeout=5.0)
        elapsed = time.monotonic() - started
        assert not thread.is_alive(), \
            "serve_forever did not return after close()"
        assert elapsed < 5.0

    def test_close_before_serve_and_double_close_are_safe(self):
        server = WorkerServer("127.0.0.1", 0, b"test-secret")
        server.close()
        server.close()
        # a closed server's serve loop returns immediately
        server.serve_forever(poll_interval=0.05)


# --------------------------------------------------------------------- #
# Public snapshot / restore
# --------------------------------------------------------------------- #
class TestSnapshotRestore:
    """snapshot(); restore() is invisible in every subsequent output."""

    def _reference(self, ids):
        service = _service("serial")
        service.on_receive_batch(ids)
        samples = service.sample_many(30, strict=False)
        memory = service.merged_memory()
        service.close()
        return samples, memory

    def test_serial_snapshot_restore_is_invisible(self):
        ids = np.asarray(STREAM.identifiers, dtype=np.int64)
        half = ids.size // 2
        ref_samples, ref_memory = self._reference(ids)
        service = _service("serial")
        service.on_receive_batch(ids[:half])
        blob = service.snapshot()
        # mutating the snapshotted service must not leak into the blob
        service.on_receive_batch(ids[half:])
        service.close()
        restored = ShardedSamplingService.restore(blob)
        restored.on_receive_batch(ids[half:])
        assert restored.elements_processed == ids.size
        assert restored.sample_many(30, strict=False) == ref_samples
        assert restored.merged_memory() == ref_memory
        restored.close()

    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    def test_parallel_snapshot_restores_cross_backend(self, backend):
        ids = np.asarray(STREAM.identifiers, dtype=np.int64)
        half = ids.size // 2
        ref_samples, ref_memory = self._reference(ids)
        with _service(backend, workers=2) as service:
            service.on_receive_batch(ids[:half])
            blob = service.snapshot()
        for target, kwargs in [("serial", {}), (backend, {"workers": 2})]:
            restored = ShardedSamplingService.restore(blob, backend=target,
                                                      **kwargs)
            restored.on_receive_batch(ids[half:])
            assert restored.elements_processed == ids.size
            assert restored.sample_many(30, strict=False) == ref_samples
            assert restored.merged_memory() == ref_memory
            restored.close()

    def test_restore_remaps_placement_to_new_pool_shape(self):
        """socket/4 workers -> process/2 workers: re-mapped, bit-identical.

        The snapshot deliberately omits the placement table; restore lays
        the shards out round-robin over whatever pool it is given, so the
        same blob serves any backend and worker count.
        """
        ids = np.asarray(STREAM.identifiers, dtype=np.int64)
        half = ids.size // 2
        ref_samples, ref_memory = self._reference(ids)
        with _service("socket", workers=4) as service:
            assert service.placement.workers == 4
            service.on_receive_batch(ids[:half])
            blob = service.snapshot()
        restored = ShardedSamplingService.restore(blob, backend="process",
                                                  workers=2)
        try:
            table = restored.placement.to_dict()
            assert table["workers"] == 2
            assert table["shards_by_worker"] == {0: [0, 2], 1: [1, 3]}
            restored.on_receive_batch(ids[half:])
            assert restored.elements_processed == ids.size
            assert restored.sample_many(30, strict=False) == ref_samples
            assert restored.merged_memory() == ref_memory
        finally:
            restored.close()

    def test_restore_rejects_non_snapshot_blobs(self):
        import pickle

        with pytest.raises(ValueError, match="snapshot"):
            ShardedSamplingService.restore(pickle.dumps({"format": 999}))
        with pytest.raises(ValueError, match="snapshot"):
            ShardedSamplingService.restore(pickle.dumps([1, 2, 3]))

    def test_seed_loads_validates_shard_count(self):
        backend = make_backend("process", 4, _mute_factory,
                              spawn_children(1, 4), workers=2)
        try:
            with pytest.raises(ValueError, match="shard loads"):
                backend.seed_loads([1, 2, 3])
        finally:
            backend.close()


# --------------------------------------------------------------------- #
# Configuration surfaces
# --------------------------------------------------------------------- #
class TestBackendSelection:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown execution backend"):
            _service("quantum")

    def test_serial_backend_rejects_workers(self):
        with pytest.raises(ValueError, match="serial"):
            _service("serial", workers=2)

    def test_non_socket_backends_reject_endpoints(self):
        with pytest.raises(ValueError, match="endpoints"):
            _service("process", shards=2, endpoints=["127.0.0.1:7333"])

    def test_services_property_requires_serial(self):
        assert len(_service("serial").services) == 4
        with _service("process", shards=2) as service:
            with pytest.raises(BackendError, match="worker processes"):
                service.services

    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    def test_worker_count_is_clamped_to_shards(self, backend):
        with _service(backend, shards=2, workers=8) as service:
            assert service.backend.workers == 2

    def test_make_backend_validation(self):
        rngs = spawn_children(1, 2)
        with pytest.raises(ValueError, match="unknown execution backend"):
            make_backend("gpu", 2, _mute_factory, rngs)
        with pytest.raises(ValueError, match="endpoints"):
            make_backend("serial", 2, _mute_factory, rngs,
                         endpoints=["127.0.0.1:7333"])


class TestEngineSpec:
    def test_backend_round_trips_through_json(self):
        spec = EngineSpec(shards=4, backend="process", workers=2)
        rebuilt = EngineSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert rebuilt == spec

    def test_socket_backend_round_trips_through_json(self):
        spec = EngineSpec(shards=4, backend="socket", workers=2,
                          endpoints=["10.0.0.1:7333", "10.0.0.2:7333"],
                          auth_token_file="/run/secrets/workers")
        rebuilt = EngineSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert rebuilt == spec

    def test_defaults_stay_serial(self):
        spec = EngineSpec.from_dict({"driver": "batch"})
        assert spec.backend == "serial"
        assert spec.workers is None
        assert spec.endpoints is None
        assert spec.auth_token_file is None

    def test_unknown_backend_rejected(self):
        with pytest.raises(ScenarioError, match="engine backend"):
            EngineSpec(shards=2, backend="gpu")

    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    def test_parallel_backends_require_shards(self, backend):
        with pytest.raises(ScenarioError, match="shards"):
            EngineSpec(backend=backend)

    def test_workers_require_parallel_backend(self):
        with pytest.raises(ScenarioError, match="workers"):
            EngineSpec(shards=2, workers=2)

    def test_endpoints_require_socket_backend(self):
        with pytest.raises(ScenarioError, match="endpoints"):
            EngineSpec(shards=2, backend="process",
                       endpoints=["127.0.0.1:7333"])

    def test_endpoints_require_auth_token_file(self):
        with pytest.raises(ScenarioError, match="auth_token_file"):
            EngineSpec(shards=2, backend="socket",
                       endpoints=["127.0.0.1:7333"])

    def test_malformed_endpoint_rejected(self):
        with pytest.raises(ScenarioError, match="host:port"):
            EngineSpec(shards=2, backend="socket", endpoints=["nonsense"],
                       auth_token_file="token")

    def test_auth_token_file_requires_socket_backend(self):
        with pytest.raises(ScenarioError, match="auth_token_file"):
            EngineSpec(shards=2, backend="process",
                       auth_token_file="token")

    def test_scenario_spec_round_trip_keeps_backend(self):
        spec = ScenarioSpec.load(EXAMPLES / "sharded_zipf.json")
        rebuilt = ScenarioSpec.from_json(spec.to_json())
        assert rebuilt.engine.shards == 4
        assert rebuilt.engine.backend == "serial"

    def test_autoscale_round_trips_through_dict(self):
        spec = EngineSpec(shards=4,
                          autoscale={"min_workers": 1, "max_workers": 3,
                                     "target_load_per_worker": 2_000})
        rebuilt = EngineSpec.from_dict(spec.to_dict())
        assert rebuilt.autoscale == spec.autoscale
        assert rebuilt.autoscale.max_workers == 3

    def test_autoscale_requires_shards(self):
        with pytest.raises(ScenarioError, match="engine.shards"):
            EngineSpec(autoscale=True)

    def test_invalid_autoscale_policy_rejected(self):
        with pytest.raises(ScenarioError, match="engine.autoscale"):
            EngineSpec(shards=4, autoscale={"min_workers": 0})


class TestCli:
    def test_run_with_process_backend(self, capsys):
        assert main(["run", str(EXAMPLES / "sharded_zipf.json"),
                     "--backend", "process", "--workers", "2",
                     "--trials", "1"]) == 0
        assert "knowledge-free" in capsys.readouterr().out

    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    def test_run_backend_override_matches_serial(self, capsys, backend):
        spec = str(EXAMPLES / "sharded_zipf.json")
        assert main(["run", spec, "--trials", "1", "--json"]) == 0
        serial_out = capsys.readouterr().out
        assert main(["run", spec, "--trials", "1", "--json",
                     "--backend", backend, "--workers", "2"]) == 0
        assert capsys.readouterr().out == serial_out

    def test_run_against_worker_serve_endpoints(self, capsys, tmp_path,
                                                worker_server):
        host, port = worker_server.address
        token_file = tmp_path / "worker.token"
        token_file.write_bytes(b"test-secret\n")
        spec = str(EXAMPLES / "sharded_zipf.json")
        assert main(["run", spec, "--trials", "1", "--json"]) == 0
        serial_out = capsys.readouterr().out
        assert main(["run", spec, "--trials", "1", "--json",
                     "--backend", "socket", "--workers", "2",
                     "--endpoints", f"{host}:{port}",
                     "--auth-token-file", str(token_file)]) == 0
        assert capsys.readouterr().out == serial_out

    def test_worker_serve_subcommand(self, tmp_path):
        # end to end through the CLI entry point, in a real server process
        token_file = tmp_path / "worker.token"
        token_file.write_bytes(b"cli-secret\n")
        with socket_module.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        context = multiprocessing.get_context()
        server = context.Process(
            target=main,
            args=(["worker", "serve", "--listen", f"127.0.0.1:{port}",
                   "--auth-token-file", str(token_file)],),
            daemon=True)
        server.start()
        try:
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                try:
                    socket_module.create_connection(("127.0.0.1", port),
                                                    timeout=1.0).close()
                    break
                except OSError:
                    time.sleep(0.1)
            else:
                raise AssertionError("worker server never came up")
            serial = _service("serial", seed=29, shards=2)
            with _service("socket", seed=29, shards=2, workers=2,
                          endpoints=[f"127.0.0.1:{port}"],
                          auth_token=b"cli-secret") as remote:
                a = serial.on_receive_batch(STREAM.identifiers[:1000])
                b = remote.on_receive_batch(STREAM.identifiers[:1000])
                assert np.array_equal(a, b)
        finally:
            server.terminate()
            server.join(timeout=5.0)

    def test_worker_serve_sigterm_drains_and_exits_zero(self, tmp_path):
        # SIGTERM (docker stop / compose scale-down) must be a graceful
        # drain: in-flight sessions finish and the process exits 0
        token_file = tmp_path / "worker.token"
        token_file.write_bytes(b"cli-secret\n")
        with socket_module.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        context = multiprocessing.get_context()
        server = context.Process(
            target=main,
            args=(["worker", "serve", "--listen", f"127.0.0.1:{port}",
                   "--auth-token-file", str(token_file)],),
            daemon=True)
        server.start()
        try:
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                try:
                    socket_module.create_connection(("127.0.0.1", port),
                                                    timeout=1.0).close()
                    break
                except OSError:
                    time.sleep(0.1)
            else:
                raise AssertionError("worker server never came up")
            with _service("socket", seed=29, shards=2, workers=1,
                          endpoints=[f"127.0.0.1:{port}"],
                          auth_token=b"cli-secret") as remote:
                remote.on_receive_batch(STREAM.identifiers[:1000])
                # SIGTERM with a session still attached: the server must
                # stop accepting but wait for the session to finish
                server.terminate()
                time.sleep(0.3)
                assert server.is_alive(), \
                    "server dropped a live session on SIGTERM"
                # the session stays usable while the host drains
                remote.on_receive_batch(STREAM.identifiers[1000:2000])
            server.join(timeout=15.0)
            assert server.exitcode == 0
        finally:
            if server.is_alive():  # pragma: no cover - failure cleanup
                server.kill()
                server.join(timeout=5.0)

    def test_throughput_process_backend(self, capsys):
        assert main(["throughput", "--stream-size", "20000",
                     "--population-size", "2000", "--scalar-limit", "4000",
                     "--backend", "process", "--workers", "2"]) == 0
        assert "[process w=2]" in capsys.readouterr().out

    def test_throughput_socket_backend(self, capsys):
        assert main(["throughput", "--stream-size", "20000",
                     "--population-size", "2000", "--scalar-limit", "4000",
                     "--backend", "socket", "--workers", "2"]) == 0
        assert "[socket w=2]" in capsys.readouterr().out
