"""Tests for repro.engine.backends (pluggable execution backends).

The headline guarantee under test: per master seed, the process backend's
outputs, merged memory, shard loads and samples are bit-identical to the
serial backend's, so every experiment can run on either.
"""

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.cli import main
from repro.engine import (
    BackendError,
    ShardedSamplingService,
    WorkerCrashError,
    WorkerTimeoutError,
    make_backend,
    run_stream,
)
from repro.scenarios import ScenarioRunner, ScenarioSpec
from repro.scenarios.registry import ScenarioError
from repro.scenarios.spec import EngineSpec
from repro.streams import zipf_stream
from repro.utils.rng import spawn_children

STREAM = zipf_stream(8_000, 1_000, alpha=1.3, random_state=17)

EXAMPLES = Path(__file__).resolve().parent.parent / "examples" / "scenarios"


def _service(backend, seed=23, shards=4, **kwargs):
    return ShardedSamplingService.knowledge_free(
        shards=shards, memory_size=10, sketch_width=32, sketch_depth=4,
        random_state=seed, backend=backend, **kwargs)


# --------------------------------------------------------------------- #
# Worker-side helpers (module-level so process backends can ship them)
# --------------------------------------------------------------------- #
class _MuteStrategy:
    """Stands in for a custom strategy holding an empty sampling memory."""

    memory_view = ()


class _MuteService:
    """Shard service that ingests traffic but never yields a sample.

    Exercises the per-sample fallback of ``sample_many``: the shard has
    loads but an empty memory, so the bulk path must step aside for the
    redraw loop (which decides which coins are consumed).
    """

    def __init__(self):
        self.elements_processed = 0
        self.strategy = _MuteStrategy()

    def on_receive_batch(self, identifiers):
        chunk = np.asarray(identifiers, dtype=np.int64)
        self.elements_processed += int(chunk.size)
        return chunk

    def sample(self):
        return None

    def reset(self):
        self.elements_processed = 0


def _mute_factory(index, rng):
    return _MuteService()


class _SleepyService:
    """Shard service whose batch ingestion stalls (timeout-path fixture)."""

    elements_processed = 0

    def on_receive_batch(self, identifiers):
        time.sleep(1.0)
        return np.asarray(identifiers, dtype=np.int64)


def _sleepy_factory(index, rng):
    return _SleepyService()


def _broken_factory(index, rng):
    raise RuntimeError("shard construction boom")


# --------------------------------------------------------------------- #
# Cross-backend bit-identity
# --------------------------------------------------------------------- #
class TestBitIdentity:
    def test_outputs_memory_and_loads_match_serial(self):
        serial = _service("serial")
        with _service("process", workers=2) as process:
            serial_run = run_stream(serial, STREAM, batch_size=512)
            process_run = run_stream(process, STREAM, batch_size=512)
            assert np.array_equal(serial_run.outputs, process_run.outputs)
            assert serial.merged_memory() == process.merged_memory()
            assert serial.shard_loads() == process.shard_loads()
            assert serial.elements_processed == process.elements_processed

    def test_samples_match_serial(self):
        serial = _service("serial", seed=31)
        with _service("process", seed=31, workers=3) as process:
            serial.on_receive_batch(STREAM.identifiers)
            process.on_receive_batch(STREAM.identifiers)
            assert serial.sample_many(250) == process.sample_many(250)
            assert serial.sample() == process.sample()

    def test_worker_loads_agree_with_parent_cache(self):
        with _service("process", workers=2) as process:
            process.on_receive_batch(STREAM.identifiers)
            assert process.backend.cached_loads() == process.shard_loads()

    def test_reset_keeps_backends_aligned(self):
        serial = _service("serial", seed=7)
        with _service("process", seed=7, workers=2) as process:
            for service in (serial, process):
                service.on_receive_batch(STREAM.identifiers)
                service.reset()
            assert process.elements_processed == 0
            assert process.sample() is None
            a = serial.on_receive_batch(STREAM.identifiers[:1000])
            b = process.on_receive_batch(STREAM.identifiers[:1000])
            assert np.array_equal(a, b)

    def test_scenario_results_match_across_backends(self):
        base = {
            "name": "backend-equality",
            "seed": 99,
            "trials": 2,
            "stream": {"kind": "zipf",
                       "params": {"stream_size": 5000,
                                  "population_size": 500, "alpha": 1.5}},
            "strategies": [{"kind": "knowledge-free",
                            "params": {"memory_size": 10,
                                       "sketch_width": 16,
                                       "sketch_depth": 4}}],
            "engine": {"driver": "batch", "batch_size": 1024, "shards": 3,
                       "backend": "serial"},
        }
        serial_result = ScenarioRunner(dict(base)).run().to_dict()
        process = dict(base)
        process["engine"] = dict(base["engine"],
                                 backend="process", workers=2)
        process_result = ScenarioRunner(process).run().to_dict()
        serial_result["name"] = process_result["name"] = "backend-equality"
        assert serial_result == process_result


class TestBulkSampleMany:
    @pytest.mark.parametrize("backend", ["serial", "process"])
    def test_bulk_path_matches_per_sample_loop(self, backend):
        reference = _service("serial", seed=41)
        reference.on_receive_batch(STREAM.identifiers)
        looped = [reference.sample() for _ in range(137)]
        with _service(backend, seed=41) as bulk:
            bulk.on_receive_batch(STREAM.identifiers)
            assert bulk.sample_many(137) == looped

    @pytest.mark.parametrize("backend", ["serial", "process"])
    def test_empty_memory_fallback(self, backend):
        with ShardedSamplingService(2, _mute_factory, random_state=5,
                                    backend=backend) as service:
            service.on_receive_batch(STREAM.identifiers[:100])
            with pytest.raises(RuntimeError, match="0 sample"):
                service.sample_many(5)
            assert service.sample_many(5, strict=False) == []


# --------------------------------------------------------------------- #
# Worker failure paths
# --------------------------------------------------------------------- #
class TestWorkerFailures:
    def test_construction_error_surfaces(self):
        with pytest.raises(WorkerCrashError, match="shard construction boom"):
            ShardedSamplingService(2, _broken_factory, random_state=3,
                                   backend="process")

    def test_dead_worker_detected(self):
        service = _service("process", shards=2, workers=2)
        try:
            service.on_receive_batch(STREAM.identifiers[:500])
            for process in service.backend._processes:
                process.terminate()
                process.join(timeout=5.0)
            # depending on timing the parent sees the broken pipe at send
            # time or the dead process in the reply poll loop
            with pytest.raises(WorkerCrashError, match="worker"):
                service.on_receive_batch(STREAM.identifiers[:500])
        finally:
            service.close()

    def test_worker_timeout(self):
        service = ShardedSamplingService(2, _sleepy_factory, random_state=3,
                                         backend="process",
                                         worker_timeout=0.1)
        try:
            with pytest.raises(WorkerTimeoutError, match="did not reply"):
                service.on_receive_batch(STREAM.identifiers[:64])
        finally:
            service.close()

    def test_timeout_poisons_backend_against_stale_replies(self):
        # regression: the timed-out request's late reply stays queued in the
        # pipe; a retry used to consume it as the answer to the new request
        service = ShardedSamplingService(2, _sleepy_factory, random_state=3,
                                         backend="process",
                                         worker_timeout=0.1)
        try:
            with pytest.raises(WorkerTimeoutError):
                service.on_receive_batch(STREAM.identifiers[:64])
            with pytest.raises(WorkerCrashError, match="desynchronised"):
                service.on_receive_batch(STREAM.identifiers[:32])
            with pytest.raises(WorkerCrashError, match="desynchronised"):
                service.shard_loads()
        finally:
            service.close()

    def test_closed_backend_rejects_requests(self):
        service = _service("process", shards=2)
        service.close()
        service.close()  # idempotent
        with pytest.raises(BackendError, match="closed"):
            service.on_receive_batch(STREAM.identifiers[:10])


# --------------------------------------------------------------------- #
# Configuration surfaces
# --------------------------------------------------------------------- #
class TestBackendSelection:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown execution backend"):
            _service("quantum")

    def test_serial_backend_rejects_workers(self):
        with pytest.raises(ValueError, match="serial"):
            _service("serial", workers=2)

    def test_services_property_requires_serial(self):
        assert len(_service("serial").services) == 4
        with _service("process", shards=2) as service:
            with pytest.raises(BackendError, match="worker processes"):
                service.services

    def test_worker_count_is_clamped_to_shards(self):
        with _service("process", shards=2, workers=8) as service:
            assert service.backend.workers == 2

    def test_make_backend_validation(self):
        rngs = spawn_children(1, 2)
        with pytest.raises(ValueError, match="unknown execution backend"):
            make_backend("gpu", 2, _mute_factory, rngs)


class TestEngineSpec:
    def test_backend_round_trips_through_json(self):
        spec = EngineSpec(shards=4, backend="process", workers=2)
        rebuilt = EngineSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert rebuilt == spec

    def test_defaults_stay_serial(self):
        spec = EngineSpec.from_dict({"driver": "batch"})
        assert spec.backend == "serial"
        assert spec.workers is None

    def test_unknown_backend_rejected(self):
        with pytest.raises(ScenarioError, match="engine backend"):
            EngineSpec(shards=2, backend="gpu")

    def test_process_backend_requires_shards(self):
        with pytest.raises(ScenarioError, match="shards"):
            EngineSpec(backend="process")

    def test_workers_require_process_backend(self):
        with pytest.raises(ScenarioError, match="workers"):
            EngineSpec(shards=2, workers=2)

    def test_scenario_spec_round_trip_keeps_backend(self):
        spec = ScenarioSpec.load(EXAMPLES / "sharded_zipf.json")
        rebuilt = ScenarioSpec.from_json(spec.to_json())
        assert rebuilt.engine.shards == 4
        assert rebuilt.engine.backend == "serial"


class TestCli:
    def test_run_with_process_backend(self, capsys):
        assert main(["run", str(EXAMPLES / "sharded_zipf.json"),
                     "--backend", "process", "--workers", "2",
                     "--trials", "1"]) == 0
        assert "knowledge-free" in capsys.readouterr().out

    def test_run_backend_override_matches_serial(self, capsys):
        spec = str(EXAMPLES / "sharded_zipf.json")
        assert main(["run", spec, "--trials", "1", "--json"]) == 0
        serial_out = capsys.readouterr().out
        assert main(["run", spec, "--trials", "1", "--json",
                     "--backend", "process"]) == 0
        assert capsys.readouterr().out == serial_out

    def test_throughput_process_backend(self, capsys):
        assert main(["throughput", "--stream-size", "20000",
                     "--population-size", "2000", "--scalar-limit", "4000",
                     "--backend", "process", "--workers", "2"]) == 0
        assert "[process w=2]" in capsys.readouterr().out
