"""Tests for repro.streams.oracle (StreamOracle)."""

import pytest

from repro.streams.oracle import StreamOracle
from repro.streams.stream import IdentifierStream


class TestStreamOracle:
    def test_probabilities_renormalised(self):
        oracle = StreamOracle({1: 2.0, 2: 2.0})
        assert oracle.probability(1) == pytest.approx(0.5)
        assert oracle.population_size == 2

    def test_min_probability(self):
        oracle = StreamOracle({1: 0.7, 2: 0.2, 3: 0.1})
        assert oracle.min_probability == pytest.approx(0.1)

    def test_insertion_probability_formula(self):
        oracle = StreamOracle({1: 0.5, 2: 0.25, 3: 0.25})
        assert oracle.insertion_probability(1) == pytest.approx(0.5)
        assert oracle.insertion_probability(2) == pytest.approx(1.0)

    def test_unknown_identifier_gets_max_insertion(self):
        oracle = StreamOracle({1: 0.5, 2: 0.5})
        assert oracle.insertion_probability(999) == 1.0
        with pytest.raises(KeyError):
            oracle.probability(999)

    def test_contains_and_len(self):
        oracle = StreamOracle({1: 0.5, 2: 0.5})
        assert 1 in oracle
        assert 3 not in oracle
        assert len(oracle) == 2

    def test_from_stream(self):
        stream = IdentifierStream(identifiers=[1, 1, 1, 2])
        oracle = StreamOracle.from_stream(stream)
        assert oracle.probability(1) == pytest.approx(0.75)
        assert oracle.probability(2) == pytest.approx(0.25)

    def test_from_empty_stream_rejected(self):
        with pytest.raises(ValueError):
            StreamOracle.from_stream(IdentifierStream(identifiers=[]))

    def test_uniform_constructor(self):
        oracle = StreamOracle.uniform(10)
        assert oracle.population_size == 10
        assert oracle.probability(3) == pytest.approx(0.1)
        assert oracle.insertion_probability(3) == pytest.approx(1.0)

    def test_rejects_non_positive_probability(self):
        with pytest.raises(ValueError):
            StreamOracle({1: 0.0, 2: 1.0})
        with pytest.raises(ValueError):
            StreamOracle({})

    def test_probabilities_copy(self):
        oracle = StreamOracle({1: 1.0})
        table = oracle.probabilities()
        table[1] = 0.0
        assert oracle.probability(1) == pytest.approx(1.0)
