"""Tests for the shard placement plane (repro.engine.placement/autoscale).

The guarantees under test: live shard migration, runtime worker
scale-up/down and load-triggered autoscaling are pure routing changes —
per master seed, outputs, merged memory, shard loads and samples stay
bit-identical to the serial backend with any schedule of placement
actions applied mid-run, including a worker killed -9 in the middle of a
migration (the socket supervisor re-spawns and journal-replays it).
Delta snapshots make migrations ship only state that changed since the
parent's cache was last refreshed, which the telemetry byte counters
make observable.
"""

import numpy as np
import pytest

from repro import telemetry
from repro.engine import (
    AutoscalePolicy,
    Autoscaler,
    BackendError,
    ShardedSamplingService,
    ShardPlacement,
)
from repro.streams import zipf_stream

STREAM = zipf_stream(8_000, 1_000, alpha=1.3, random_state=17)
IDS = np.asarray(STREAM.identifiers, dtype=np.int64)

PARALLEL_BACKENDS = ["process", "socket"]


def _service(backend, seed=23, shards=4, **kwargs):
    return ShardedSamplingService.knowledge_free(
        shards=shards, memory_size=10, sketch_width=32, sketch_depth=4,
        random_state=seed, backend=backend, **kwargs)


def _serial_reference(batches, seed=23, shards=4, reset_after=None):
    """Outputs/samples/memory of a serial run over ``batches``."""
    service = _service("serial", seed=seed, shards=shards)
    outputs = []
    for index, batch in enumerate(batches):
        outputs.append(service.on_receive_batch(batch))
        if reset_after is not None and index == reset_after:
            service.reset()
            outputs.clear()
    samples = service.sample_many(40, strict=False)
    memory = service.merged_memory()
    loads = service.shard_loads()
    service.close()
    return outputs, samples, memory, loads


# --------------------------------------------------------------------- #
# The routing table itself
# --------------------------------------------------------------------- #
class TestShardPlacement:
    def test_worker_ids_are_never_reused(self):
        placement = ShardPlacement(4)
        first = placement.add_worker()
        second = placement.add_worker()
        placement.remove_worker(second)
        assert placement.add_worker() == second + 1
        assert first == 0 and second == 1

    def test_round_robin_reproduces_legacy_pinning(self):
        placement = ShardPlacement(5)
        for _ in range(2):
            placement.add_worker()
        placement.assign_round_robin()
        assert placement.table == [0, 1, 0, 1, 0]
        assert placement.shards_of(0) == [0, 2, 4]
        assert placement.shards_of(1) == [1, 3]

    def test_reassignment_counts_as_migration(self):
        placement = ShardPlacement(2)
        placement.add_worker()
        placement.add_worker()
        placement.assign(0, 0)  # fresh assignment: not a migration
        assert placement.migrations == 0
        placement.assign(0, 0)  # no-op
        assert placement.migrations == 0
        placement.assign(0, 1)  # cutover
        assert placement.migrations == 1

    def test_worker_must_be_drained_before_removal(self):
        placement = ShardPlacement(2)
        worker = placement.add_worker()
        placement.assign_round_robin()
        with pytest.raises(ValueError, match="still owns shards"):
            placement.remove_worker(worker)

    def test_unassigned_shard_rejected_on_lookup(self):
        placement = ShardPlacement(2)
        placement.add_worker()
        with pytest.raises(ValueError, match="not assigned"):
            placement.worker_of(1)
        with pytest.raises(ValueError, match="out of range"):
            placement.worker_of(7)

    def test_assign_validates_registration(self):
        placement = ShardPlacement(2)
        with pytest.raises(ValueError, match="not registered"):
            placement.assign(0, 3)

    def test_to_dict_is_a_consistent_view(self):
        placement = ShardPlacement(3)
        placement.add_worker()
        placement.add_worker()
        placement.assign_round_robin()
        placement.assign(2, 1)
        info = placement.to_dict()
        assert info == {
            "workers": 2,
            "worker_ids": [0, 1],
            "table": [0, 1, 1],
            "shards_by_worker": {0: [0], 1: [1, 2]},
            "migrations": 1,
        }


# --------------------------------------------------------------------- #
# Policy object
# --------------------------------------------------------------------- #
class TestAutoscalePolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="min_workers"):
            AutoscalePolicy(min_workers=0)
        with pytest.raises(ValueError, match="max_workers"):
            AutoscalePolicy(min_workers=3, max_workers=2)
        with pytest.raises(ValueError, match="target_load_per_worker"):
            AutoscalePolicy(target_load_per_worker=0)
        with pytest.raises(ValueError, match="check_every"):
            AutoscalePolicy(check_every=-1)
        with pytest.raises(ValueError, match="imbalance_ratio"):
            AutoscalePolicy(imbalance_ratio=0.5)

    def test_coerce_forms(self):
        assert AutoscalePolicy.coerce(None) is None
        assert AutoscalePolicy.coerce(False) is None
        assert AutoscalePolicy.coerce(True) == AutoscalePolicy()
        policy = AutoscalePolicy(max_workers=2)
        assert AutoscalePolicy.coerce(policy) is policy
        assert AutoscalePolicy.coerce({"max_workers": 2}) == policy
        with pytest.raises(ValueError, match="boolean or a policy"):
            AutoscalePolicy.coerce("yes")

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown autoscale policy"):
            AutoscalePolicy.from_dict({"worker_count": 3})

    def test_round_trips_through_dict(self):
        policy = AutoscalePolicy(min_workers=2, max_workers=6,
                                 target_load_per_worker=1000,
                                 check_every=64, imbalance_ratio=3.0)
        assert AutoscalePolicy.from_dict(policy.to_dict()) == policy

    def test_after_batch_accumulates_across_small_batches(self):
        class _Probe:
            shards = 1
            evaluated = 0

            def cached_loads(self):
                _Probe.evaluated += 1
                return [0]

            placement = ShardPlacement(1)

        _Probe.placement.add_worker()
        _Probe.placement.assign_round_robin()
        scaler = Autoscaler(AutoscalePolicy(check_every=100))
        backend = _Probe()
        for _ in range(4):
            scaler.after_batch(backend, 60)  # 240 elements = 2 checks
        assert scaler.evaluations == 2


# --------------------------------------------------------------------- #
# Live migration, bit-identical
# --------------------------------------------------------------------- #
class TestLiveMigration:
    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    def test_mid_run_migration_and_scaling_match_serial(self, backend):
        batches = [IDS[:3000], IDS[3000:6000], IDS[6000:]]
        ref_outputs, ref_samples, ref_memory, ref_loads = \
            _serial_reference(batches)
        with _service(backend, workers=2) as service:
            outputs = [service.on_receive_batch(batches[0])]
            # move a shard between the two original workers
            service.migrate_shard(0, 1)
            outputs.append(service.on_receive_batch(batches[1]))
            # grow the pool and move a shard onto the new worker
            new_worker = service.add_worker()
            service.migrate_shard(2, new_worker)
            assert service.placement.shards_of(new_worker) == [2]
            outputs.append(service.on_receive_batch(batches[2]))
            # retire a worker: its shards fold back onto the survivors
            service.remove_worker(1)
            assert 1 not in service.placement.worker_ids
            assert sorted(sum((service.placement.shards_of(worker)
                               for worker in service.placement.worker_ids),
                              [])) == [0, 1, 2, 3]
            for ours, expected in zip(outputs, ref_outputs):
                assert np.array_equal(ours, expected)
            assert service.sample_many(40, strict=False) == ref_samples
            assert service.merged_memory() == ref_memory
            assert service.shard_loads() == ref_loads
            assert service.placement.migrations >= 2

    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    def test_migrate_to_owner_is_a_noop(self, backend):
        with _service(backend, workers=2) as service:
            service.on_receive_batch(IDS[:1000])
            owner = service.placement.worker_of(0)
            service.migrate_shard(0, owner)
            assert service.placement.migrations == 0

    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    def test_migrate_to_unknown_worker_rejected(self, backend):
        with _service(backend, workers=2) as service:
            with pytest.raises(ValueError, match="not in the pool"):
                service.migrate_shard(0, 17)

    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    def test_last_worker_cannot_be_removed(self, backend):
        with _service(backend, workers=1) as service:
            with pytest.raises(BackendError, match="last worker"):
                service.remove_worker(service.placement.worker_ids[0])

    def test_serial_backend_cannot_scale(self):
        service = _service("serial")
        with pytest.raises(BackendError, match="cannot migrate"):
            service.migrate_shard(0, 1)
        with pytest.raises(BackendError, match="cannot add"):
            service.add_worker()
        service.close()

    def test_kill_nine_during_migration_recovers_bit_identical(self):
        """kill -9 on the migration source; supervisor replay converges."""
        batches = [IDS[:4000], IDS[4000:]]
        ref_outputs, ref_samples, ref_memory, ref_loads = \
            _serial_reference(batches)
        with _service("socket", workers=2) as service:
            outputs = [service.on_receive_batch(batches[0])]
            # the source worker dies before the delta snapshot request;
            # the supervisor re-spawns it mid-migration
            service.backend._processes[0].kill()
            service.migrate_shard(0, 1)
            assert service.backend.respawns == 1
            assert service.placement.worker_of(0) == 1
            outputs.append(service.on_receive_batch(batches[1]))
            for ours, expected in zip(outputs, ref_outputs):
                assert np.array_equal(ours, expected)
            assert service.sample_many(40, strict=False) == ref_samples
            assert service.merged_memory() == ref_memory
            assert service.shard_loads() == ref_loads

    def test_kill_nine_after_migration_replays_the_move(self):
        """A post-migration crash must rebuild the *migrated* membership."""
        batches = [IDS[:4000], IDS[4000:]]
        ref_outputs, ref_samples, ref_memory, _ = _serial_reference(batches)
        with _service("socket", workers=2) as service:
            outputs = [service.on_receive_batch(batches[0])]
            service.migrate_shard(0, 1)
            # both sides of the move crash after it completed: replay must
            # rebuild worker 0 without shard 0 and worker 1 with it
            service.backend._processes[0].kill()
            service.backend._processes[1].kill()
            outputs.append(service.on_receive_batch(batches[1]))
            assert service.backend.respawns == 2
            for ours, expected in zip(outputs, ref_outputs):
                assert np.array_equal(ours, expected)
            assert service.sample_many(40, strict=False) == ref_samples
            assert service.merged_memory() == ref_memory


# --------------------------------------------------------------------- #
# Load-triggered autoscaling, bit-identical
# --------------------------------------------------------------------- #
AUTOSCALE = {"min_workers": 1, "max_workers": 3,
             "target_load_per_worker": 2_000, "check_every": 1_024}


class TestAutoscaling:
    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    def test_flash_crowd_scale_up_matches_serial(self, backend):
        batches = [IDS[start:start + 512]
                   for start in range(0, IDS.size, 512)]
        ref_outputs, ref_samples, ref_memory, ref_loads = \
            _serial_reference(batches)
        with _service(backend, workers=1, autoscale=AUTOSCALE) as service:
            assert service.placement.workers == 1
            grew_mid_run = False
            outputs = []
            for batch in batches:
                outputs.append(service.on_receive_batch(batch))
                if 1 < service.placement.workers < len(batches):
                    grew_mid_run = True
            stats = service.autoscaler.stats()
            assert grew_mid_run, "pool never grew while the stream ran"
            assert service.placement.workers == 3
            assert stats["scale_ups"] == 2
            assert stats["evaluations"] > 0
            for ours, expected in zip(outputs, ref_outputs):
                assert np.array_equal(ours, expected)
            assert service.sample_many(40, strict=False) == ref_samples
            assert service.merged_memory() == ref_memory
            assert service.shard_loads() == ref_loads

    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    def test_idle_pool_scales_back_down(self, backend):
        batches = [IDS[start:start + 512]
                   for start in range(0, IDS.size, 512)]
        quiet = [IDS[:512] for _ in range(4)]
        _, ref_samples, ref_memory, _ = _serial_reference(
            batches + quiet, reset_after=len(batches) - 1)
        with _service(backend, workers=1, autoscale=AUTOSCALE) as service:
            for batch in batches:
                service.on_receive_batch(batch)
            assert service.placement.workers == 3
            # the flash crowd passes: loads reset, the next evaluations
            # retire the extra workers
            service.reset()
            for batch in quiet:
                service.on_receive_batch(batch)
            stats = service.autoscaler.stats()
            assert service.placement.workers == 1
            assert stats["scale_downs"] == 2
            assert service.sample_many(40, strict=False) == ref_samples
            assert service.merged_memory() == ref_memory

    def test_autoscale_is_inert_on_the_serial_backend(self):
        service = _service("serial", autoscale=AUTOSCALE)
        service.on_receive_batch(IDS)
        assert service.autoscaler is None
        assert service.placement.workers == 1
        service.close()

    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    def test_placement_info_reports_policy_and_stats(self, backend):
        with _service(backend, workers=1, autoscale=AUTOSCALE) as service:
            service.on_receive_batch(IDS[:4096])
            info = service.placement_info()
            assert info["backend"] == backend
            assert info["supports_scaling"] is True
            assert info["migrations_in_flight"] == 0
            assert info["autoscale"]["policy"]["max_workers"] == 3
            assert info["autoscale"]["evaluations"] > 0
            assert sorted(info["shards_by_worker"]) == info["worker_ids"]
            assert service.wait_placement_idle(timeout=1.0)


# --------------------------------------------------------------------- #
# Delta snapshots
# --------------------------------------------------------------------- #
class TestDeltaSnapshots:
    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    def test_clean_shard_migration_ships_no_delta_bytes(self, backend):
        batches = [IDS[:4000], IDS[4000:]]
        ref_outputs, ref_samples, ref_memory, _ = _serial_reference(batches)
        with telemetry.enabled() as registry:
            with _service(backend, workers=2) as service:
                outputs = [service.on_receive_batch(batches[0])]
                # first migration: every shard of the source is dirty, so
                # the delta ships as much as a full snapshot would
                service.migrate_shard(0, 1)
                # refresh: the parent caches current state, shards go clean
                service.backend.refresh_shard_states()
                # second migration without intervening writes: zero delta
                # bytes, the cached blob is shipped verbatim
                service.migrate_shard(2, 1)
                outputs.append(service.on_receive_batch(batches[1]))
                for ours, expected in zip(outputs, ref_outputs):
                    assert np.array_equal(ours, expected)
                assert service.sample_many(40, strict=False) == ref_samples
                assert service.merged_memory() == ref_memory
            snapshot = registry.snapshot()
        counters = snapshot["counters"]
        assert counters[f"backend.{backend}.migrations"] == 2
        assert counters[f"backend.{backend}.migration_bytes"] > 0
        # delta < full is the point of dirty tracking: the second (clean)
        # migration added full-snapshot bytes but zero delta bytes
        assert 0 < counters[f"backend.{backend}.delta_snapshot_bytes"] \
            < counters[f"backend.{backend}.full_snapshot_bytes"]
        assert snapshot["histograms"][
            f"backend.{backend}.migration_seconds"]["count"] == 2
        assert snapshot["gauges"][f"backend.{backend}.shard_worker.0"] == 1
        assert snapshot["gauges"][f"backend.{backend}.shard_worker.2"] == 1

    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    def test_dirty_tracking_survives_writes_after_refresh(self, backend):
        """A post-refresh write re-dirties the shard; the migration must
        ship the *current* state, not the stale cache."""
        batches = [IDS[:4000], IDS[4000:6000], IDS[6000:]]
        ref_outputs, ref_samples, ref_memory, _ = _serial_reference(batches)
        with _service(backend, workers=2) as service:
            outputs = [service.on_receive_batch(batches[0])]
            service.backend.refresh_shard_states()
            outputs.append(service.on_receive_batch(batches[1]))
            service.migrate_shard(0, 1)
            outputs.append(service.on_receive_batch(batches[2]))
            for ours, expected in zip(outputs, ref_outputs):
                assert np.array_equal(ours, expected)
            assert service.sample_many(40, strict=False) == ref_samples
            assert service.merged_memory() == ref_memory
