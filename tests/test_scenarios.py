"""Tests for repro.scenarios (declarative specs, registries, runner)."""

import numpy as np
import pytest

from repro.scenarios import (
    ComponentRegistry,
    ComponentSpec,
    EngineSpec,
    MetricsSpec,
    NetworkSpec,
    ScenarioError,
    ScenarioRunner,
    ScenarioSpec,
    StrategySpec,
    UnknownComponentError,
    available_components,
    register_strategy,
    register_stream,
    run_scenario,
)
from repro.scenarios.registry import STRATEGIES, STREAMS


def small_stream_spec(**overrides):
    """A fast stream-mode scenario used throughout the module."""
    data = {
        "name": "unit-zipf",
        "seed": 11,
        "trials": 2,
        "stream": {"kind": "zipf",
                   "params": {"stream_size": 3000, "population_size": 200,
                              "alpha": 4}},
        "strategies": [
            {"kind": "knowledge-free",
             "params": {"memory_size": 8, "sketch_width": 16,
                        "sketch_depth": 4}},
            {"kind": "omniscient", "params": {"memory_size": 8}},
        ],
    }
    data.update(overrides)
    return ScenarioSpec.from_dict(data)


def small_network_spec():
    return ScenarioSpec.from_dict({
        "name": "unit-gossip",
        "seed": 5,
        "trials": 2,
        "network": {"num_correct": 10, "num_malicious": 2, "rounds": 8,
                    "memory_size": 5, "sketch_width": 8, "sketch_depth": 3},
        "metrics": {"collect": ["gain", "divergence", "malicious_fraction"]},
    })


class TestSpecSerialization:
    def test_dict_round_trip_is_lossless(self):
        spec = small_stream_spec(
            adversary={"kind": "peak", "params": {"peak_frequency": 500}})
        rebuilt = ScenarioSpec.from_dict(spec.to_dict())
        assert rebuilt == spec
        assert rebuilt.to_dict() == spec.to_dict()

    def test_json_round_trip_is_lossless(self):
        spec = small_network_spec()
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_file_round_trip(self, tmp_path):
        spec = small_stream_spec()
        path = tmp_path / "scenario.json"
        spec.save(path)
        assert ScenarioSpec.load(path) == spec

    def test_sketch_section_round_trips(self):
        spec = small_stream_spec(strategies=[
            {"kind": "knowledge-free", "label": "kf/cs",
             "params": {"memory_size": 8},
             "sketch": {"kind": "count-sketch",
                        "params": {"width": 16, "depth": 3}}},
        ])
        rebuilt = ScenarioSpec.from_dict(spec.to_dict())
        assert rebuilt.strategies[0].sketch == ComponentSpec(
            "count-sketch", {"width": 16, "depth": 3})

    def test_defaults_materialize(self):
        spec = small_stream_spec()
        assert spec.engine == EngineSpec()
        assert spec.metrics == MetricsSpec()
        assert spec.mode == "stream"
        assert small_network_spec().mode == "network"

    def test_unknown_top_level_key_rejected(self):
        data = small_stream_spec().to_dict()
        data["streams"] = data.pop("stream")
        with pytest.raises(ScenarioError, match="unknown key"):
            ScenarioSpec.from_dict(data)

    def test_unknown_section_key_rejected(self):
        data = small_stream_spec().to_dict()
        data["engine"] = {"driver": "batch", "chunk": 64}
        with pytest.raises(ScenarioError, match="unknown key"):
            ScenarioSpec.from_dict(data)

    def test_stream_mode_requires_stream_and_strategies(self):
        with pytest.raises(ScenarioError, match="stream section"):
            ScenarioSpec(name="x")
        with pytest.raises(ScenarioError, match="at least one strategy"):
            ScenarioSpec(name="x", stream=ComponentSpec("uniform"))

    def test_network_mode_excludes_stream_sections(self):
        with pytest.raises(ScenarioError, match="network scenario"):
            ScenarioSpec(name="x", network=NetworkSpec(),
                         stream=ComponentSpec("uniform"))
        with pytest.raises(ScenarioError, match="network scenario"):
            ScenarioSpec(name="x", network=NetworkSpec(),
                         strategies=[StrategySpec("knowledge-free")])

    def test_duplicate_strategy_labels_rejected(self):
        with pytest.raises(ScenarioError, match="duplicate strategy labels"):
            small_stream_spec(strategies=[
                {"kind": "knowledge-free", "params": {"memory_size": 4}},
                {"kind": "knowledge-free", "params": {"memory_size": 8}},
            ])

    def test_invalid_driver_and_metrics_rejected(self):
        with pytest.raises(ScenarioError, match="driver"):
            EngineSpec(driver="warp")
        with pytest.raises(ScenarioError, match="batch driver"):
            EngineSpec(driver="scalar", shards=4)
        with pytest.raises(ScenarioError, match="metric group"):
            MetricsSpec(collect=["gain", "latency"])

    def test_invalid_json_rejected(self):
        with pytest.raises(ScenarioError, match="invalid scenario JSON"):
            ScenarioSpec.from_json("{not json")

    def test_metrics_section_without_collect_uses_defaults(self):
        spec = small_stream_spec(metrics={})
        assert spec.metrics == MetricsSpec()
        with pytest.raises(ScenarioError, match="must not be empty"):
            small_stream_spec(metrics={"collect": []})


class TestRegistry:
    def test_builtins_registered(self):
        components = available_components()
        assert "knowledge-free" in components["strategies"]
        assert "zipf" in components["streams"]
        assert "count-min" in components["sketches"]
        assert "targeted" in components["adversaries"]

    def test_unknown_key_lists_available(self):
        registry = ComponentRegistry("widget")
        registry.register("a", lambda: None)
        with pytest.raises(UnknownComponentError, match="available: a"):
            registry.get("b")

    def test_unknown_param_lists_accepted(self):
        registry = ComponentRegistry("widget")

        @registry.register("thing")
        def build_thing(size, *, random_state=None):
            return size

        with pytest.raises(ScenarioError, match="accepted: size"):
            registry.build("thing", {"sise": 3})

    def test_missing_required_param_reported(self):
        registry = ComponentRegistry("widget")
        registry.register("thing", lambda size: size)
        with pytest.raises(ScenarioError, match="invalid parameters"):
            registry.build("thing", {})

    def test_context_filtered_to_accepted(self):
        registry = ComponentRegistry("widget")
        registry.register("thing", lambda size, *, random_state=None: (
            size, random_state))
        built = registry.build("thing", {"size": 2}, random_state=7,
                               stream="ignored")
        assert built == (2, 7)

    def test_decorator_registration_and_shadowing(self):
        key = "unit-test-strategy"

        @register_strategy(key)
        def build(memory_size, *, random_state=None):
            return ("v1", memory_size)

        assert STRATEGIES.build(key, {"memory_size": 3})[0] == "v1"

        @register_strategy(key)
        def build_again(memory_size, *, random_state=None):
            return ("v2", memory_size)

        assert STRATEGIES.build(key, {"memory_size": 3})[0] == "v2"

    def test_invalid_registration_rejected(self):
        with pytest.raises(ScenarioError):
            register_stream("")
        with pytest.raises(ScenarioError):
            register_stream("ok", "not-callable")


class TestRunnerValidation:
    def test_unknown_stream_kind(self):
        spec = small_stream_spec(stream={"kind": "does-not-exist"})
        with pytest.raises(UnknownComponentError, match="unknown stream"):
            ScenarioRunner(spec).run()

    def test_unknown_strategy_kind(self):
        spec = small_stream_spec(strategies=[
            {"kind": "does-not-exist", "params": {"memory_size": 4}}])
        with pytest.raises(UnknownComponentError, match="unknown strategy"):
            ScenarioRunner(spec).run()

    def test_bad_stream_param_fails_before_running(self):
        spec = small_stream_spec(
            stream={"kind": "zipf", "params": {"stream_size": 100,
                                               "population_size": 10,
                                               "alfa": 2}})
        with pytest.raises(ScenarioError, match="does not accept"):
            ScenarioRunner(spec).validate()

    def test_bad_strategy_param(self):
        spec = small_stream_spec(strategies=[
            {"kind": "knowledge-free", "params": {"memory_size": 4,
                                                  "sketch_widht": 8}}])
        with pytest.raises(ScenarioError, match="does not accept"):
            ScenarioRunner(spec).run()

    def test_sketch_on_incompatible_strategy(self):
        spec = small_stream_spec(strategies=[
            {"kind": "reservoir", "params": {"memory_size": 4},
             "sketch": {"kind": "count-min",
                        "params": {"width": 8, "depth": 2}}}])
        with pytest.raises(ScenarioError, match="frequency oracle"):
            ScenarioRunner(spec).run()

    def test_compile_rejects_network_mode(self):
        with pytest.raises(ScenarioError, match="network scenario"):
            ScenarioRunner(small_network_spec()).compile()

    def test_runner_accepts_dict_and_json(self):
        data = small_stream_spec().to_dict()
        assert ScenarioRunner(data).spec == small_stream_spec()
        assert (ScenarioRunner(small_stream_spec().to_json()).spec
                == small_stream_spec())
        with pytest.raises(ScenarioError, match="must be a ScenarioSpec"):
            ScenarioRunner(42)


class TestRunnerExecution:
    def test_round_tripped_spec_reproduces_identical_results(self):
        spec = small_stream_spec(
            adversary={"kind": "targeted",
                       "params": {"target_identifier": 0,
                                  "distinct_identifiers": 20,
                                  "repetitions": 3}})
        first = run_scenario(spec)
        rebuilt = ScenarioSpec.from_json(spec.to_json())
        second = run_scenario(rebuilt)
        assert first.to_dict() == second.to_dict()

    def test_network_round_trip_reproduces_identical_results(self):
        spec = small_network_spec()
        first = run_scenario(spec)
        second = run_scenario(ScenarioSpec.from_json(spec.to_json()))
        assert first.to_dict() == second.to_dict()
        assert first.mode == "network"
        assert len(first.summaries) == spec.trials
        assert all(row["nodes"] == 10 for row in first.summaries)

    def test_batch_and_scalar_drivers_agree(self):
        # The engine's exactness contract, surfaced at the scenario level:
        # the driver choice changes speed only, never results.
        batch = run_scenario(small_stream_spec(
            engine={"driver": "batch", "batch_size": 256}))
        scalar = run_scenario(small_stream_spec(engine={"driver": "scalar"}))
        assert batch.to_dict() == scalar.to_dict()

    def test_seed_changes_results(self):
        base = run_scenario(small_stream_spec())
        other = run_scenario(small_stream_spec(seed=12))
        assert base.to_dict() != other.to_dict()

    def test_metrics_selection_prunes_columns(self):
        result = run_scenario(small_stream_spec(
            metrics={"collect": ["gain"]}))
        assert set(result.summaries[0]) == {"strategy", "trials",
                                            "mean_gain", "std_gain"}
        assert "input_divergence" not in result.details[0]

    def test_sketch_section_builds_alternative_oracle(self):
        from repro.sketches import CountSketch

        spec = small_stream_spec(strategies=[
            {"kind": "knowledge-free", "params": {"memory_size": 8},
             "sketch": {"kind": "count-sketch",
                        "params": {"width": 16, "depth": 3}}}])
        runner = ScenarioRunner(spec)
        factories = runner.strategy_factories()
        stream = runner.stream_factory()(np.random.default_rng(0))
        strategy = factories["knowledge-free"](stream,
                                               np.random.default_rng(0))
        assert isinstance(strategy.frequency_oracle, CountSketch)

    def test_sharded_scenario_runs(self):
        spec = small_stream_spec(
            trials=1,
            strategies=[{"kind": "knowledge-free",
                         "params": {"memory_size": 8}}],
            engine={"driver": "batch", "batch_size": 512, "shards": 3})
        result = run_scenario(spec)
        assert result.summaries[0]["trials"] == 1
        # sharding preserves determinism across reruns too
        assert run_scenario(spec).to_dict() == result.to_dict()

    def test_trace_scenario_runs(self):
        spec = small_stream_spec(
            trials=1,
            stream={"kind": "trace", "params": {"name": "nasa",
                                                "scale": 0.001}})
        result = run_scenario(spec)
        assert result.details[0]["stream_size"] > 0

    def test_unknown_trace_name(self):
        spec = small_stream_spec(
            stream={"kind": "trace", "params": {"name": "mars"}})
        with pytest.raises(ScenarioError, match="unknown trace"):
            run_scenario(spec)

    def test_custom_registered_stream_is_runnable(self):
        from repro.streams import IdentifierStream

        @register_stream("unit-test-constant")
        def constant_stream(stream_size, *, random_state=None):
            return IdentifierStream(identifiers=[1] * stream_size,
                                    universe=[1, 2], label="constant")

        spec = small_stream_spec(
            trials=1,
            stream={"kind": "unit-test-constant",
                    "params": {"stream_size": 50}},
            strategies=[{"kind": "reservoir", "params": {"memory_size": 4}}])
        result = run_scenario(spec)
        assert result.details[0]["stream_size"] == 50

    def test_harness_from_scenario_adapter(self):
        from repro.experiments.harness import ExperimentHarness

        harness = ExperimentHarness.from_scenario(small_stream_spec())
        result = harness.run()
        assert set(result.summaries()) == {"knowledge-free", "omniscient"}

    def test_system_simulation_from_scenario_adapter(self):
        from repro.network.simulator import SystemSimulation

        simulation = SystemSimulation.from_scenario(small_network_spec())
        simulation.run()
        assert len(simulation.report().per_node) == 10


class TestStreamFactoryComposition:
    def test_adversary_extends_universe_and_marks_malicious(self):
        spec = small_stream_spec(
            adversary={"kind": "flooding",
                       "params": {"distinct_identifiers": 30}})
        stream = ScenarioRunner(spec).stream_factory()(
            np.random.default_rng(3))
        assert len(stream.malicious) == 30
        assert set(stream.malicious) <= set(stream.universe)
        assert stream.population_size == 230

    def test_stream_factory_is_per_trial_deterministic(self):
        factory = ScenarioRunner(small_stream_spec()).stream_factory()
        one = factory(np.random.default_rng(9))
        two = factory(np.random.default_rng(9))
        assert one.identifiers == two.identifiers
