"""Tests for repro.network.overlay."""

import pytest

from repro.network.overlay import (
    OverlayGraph,
    erdos_renyi,
    random_regular,
    ring_with_shortcuts,
)


class TestOverlayGraph:
    def test_basic_construction(self):
        graph = OverlayGraph([1, 2, 3])
        assert graph.num_nodes == 3
        assert graph.num_edges == 0

    def test_duplicate_identifiers_collapsed(self):
        graph = OverlayGraph([1, 1, 2])
        assert graph.num_nodes == 2

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            OverlayGraph([])

    def test_add_edge_and_neighbors(self):
        graph = OverlayGraph([1, 2, 3])
        graph.add_edge(1, 2)
        assert graph.has_edge(1, 2)
        assert graph.has_edge(2, 1)
        assert graph.neighbors(1) == [2]
        assert graph.degree(1) == 1
        assert graph.num_edges == 1

    def test_self_loops_ignored(self):
        graph = OverlayGraph([1, 2])
        graph.add_edge(1, 1)
        assert graph.num_edges == 0

    def test_add_edge_unknown_node_rejected(self):
        graph = OverlayGraph([1, 2])
        with pytest.raises(KeyError):
            graph.add_edge(1, 99)

    def test_connectivity(self):
        graph = OverlayGraph([1, 2, 3, 4])
        graph.add_edge(1, 2)
        graph.add_edge(3, 4)
        assert not graph.is_connected()
        graph.add_edge(2, 3)
        assert graph.is_connected()

    def test_connected_component(self):
        graph = OverlayGraph([1, 2, 3, 4])
        graph.add_edge(1, 2)
        assert graph.connected_component(1) == {1, 2}
        with pytest.raises(KeyError):
            graph.connected_component(99)

    def test_restricted_connectivity(self):
        # Correct nodes 1-3 connected only through malicious node 4.
        graph = OverlayGraph([1, 2, 3, 4])
        graph.add_edge(1, 4)
        graph.add_edge(2, 4)
        graph.add_edge(3, 4)
        assert graph.is_connected()
        assert not graph.is_connected(restrict_to=[1, 2, 3])
        with pytest.raises(KeyError):
            graph.is_connected(restrict_to=[1, 99])

    def test_shortest_path_length(self):
        graph = OverlayGraph([1, 2, 3, 4])
        graph.add_edge(1, 2)
        graph.add_edge(2, 3)
        assert graph.shortest_path_length(1, 3) == 2
        assert graph.shortest_path_length(1, 1) == 0
        assert graph.shortest_path_length(1, 4) == -1


class TestTopologyGenerators:
    def test_ring_is_connected(self):
        graph = ring_with_shortcuts(range(20), shortcuts=0)
        assert graph.is_connected()
        assert graph.num_edges == 20

    def test_ring_shortcuts_added(self):
        graph = ring_with_shortcuts(range(30), shortcuts=10, random_state=0)
        assert graph.num_edges >= 30 + 5

    def test_single_node_ring(self):
        graph = ring_with_shortcuts([7])
        assert graph.num_nodes == 1
        assert graph.num_edges == 0

    def test_erdos_renyi_connectivity_repair(self):
        graph = erdos_renyi(range(30), edge_probability=0.01, random_state=1)
        assert graph.is_connected()

    def test_erdos_renyi_dense(self):
        graph = erdos_renyi(range(20), edge_probability=0.5, random_state=2,
                            ensure_connected=False)
        assert graph.num_edges > 50

    def test_erdos_renyi_invalid_probability(self):
        with pytest.raises(ValueError):
            erdos_renyi(range(5), edge_probability=1.5)

    def test_random_regular_degree_bounded_and_connected(self):
        graph = random_regular(range(40), degree=4, random_state=3)
        assert graph.is_connected()
        degrees = [graph.degree(node) for node in graph.nodes]
        assert max(degrees) <= 4 + 2  # connectivity repair may add a ring edge

    def test_random_regular_rejects_large_degree(self):
        with pytest.raises(ValueError):
            random_regular(range(5), degree=5)
