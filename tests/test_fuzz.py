"""Tests for repro.fuzz (spec generator + differential executor)."""

import glob
import json
import os

import pytest

from repro.fuzz import (
    DEFAULT_VARIANTS,
    VARIANTS,
    corpus_entry,
    generate_specs,
    replay_corpus_entry,
    run_differential,
)
from repro.fuzz import differential
from repro.scenarios import ScenarioRunner, ScenarioSpec

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "fuzz_corpus")
CORPUS_FILES = sorted(glob.glob(os.path.join(CORPUS_DIR, "*.json")))


class TestGenerator:
    def test_deterministic_per_seed(self):
        first = [spec.to_json() for spec in generate_specs(10, 42)]
        second = [spec.to_json() for spec in generate_specs(10, 42)]
        assert first == second

    def test_different_seeds_differ(self):
        a = [spec.to_json() for spec in generate_specs(10, 0)]
        b = [spec.to_json() for spec in generate_specs(10, 1)]
        assert a != b

    def test_specs_are_valid_and_runnable(self):
        for spec in generate_specs(30, 7):
            ScenarioRunner(spec).validate()

    def test_covers_the_planes(self):
        # over a reasonable sample, every mode the fuzzer claims to cross
        # must actually appear
        specs = generate_specs(40, 3)
        assert any(spec.adaptive_adversary is not None for spec in specs)
        assert any(spec.adversary is not None for spec in specs)
        assert any(spec.churn is not None for spec in specs)
        assert any(spec.engine.autoscale is not None for spec in specs)
        assert {spec.engine.shards for spec in specs} >= {1, 2}

    def test_count_must_be_positive(self):
        with pytest.raises(ValueError):
            generate_specs(0, 0)


class TestDifferential:
    def test_small_sweep_is_identical(self):
        specs = generate_specs(3, 123)
        report = run_differential(specs, variants=("serial", "process"))
        assert report.ok
        assert report.checked == 3

    def test_needs_two_variants(self):
        with pytest.raises(ValueError):
            run_differential(generate_specs(1, 0), variants=("serial",))

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError, match="unknown variant"):
            run_differential(generate_specs(1, 0),
                             variants=("serial", "quantum"))

    def test_variant_spec_keeps_topology(self):
        spec = generate_specs(1, 5)[0]
        for name in VARIANTS:
            rebased = differential._variant_spec(spec, name)
            assert rebased.engine.shards == spec.engine.shards
            assert rebased.engine.batch_size == spec.engine.batch_size

    def test_unsharded_spec_gets_uniform_sharding(self):
        spec = ScenarioSpec.from_dict({
            "name": "unsharded", "seed": 1, "trials": 1,
            "stream": {"kind": "uniform",
                       "params": {"stream_size": 1000,
                                  "population_size": 50}},
            "strategies": [{"kind": "reservoir",
                            "params": {"memory_size": 8}}],
        })
        shards = {differential._variant_spec(spec, name).engine.shards
                  for name in DEFAULT_VARIANTS}
        assert shards == {2}

    def test_injected_divergence_is_caught(self, monkeypatch):
        real = differential._execute_variant

        def corrupted(spec, variant):
            result = real(spec, variant)
            if variant == "process":
                result["summaries"][0]["mean_gain"] += 1e-9
            return result

        monkeypatch.setattr(differential, "_execute_variant", corrupted)
        specs = generate_specs(1, 9)
        report = run_differential(specs, variants=("serial", "process"))
        assert not report.ok
        (divergence,) = report.divergences
        assert divergence.diverged == "process"
        assert any("mean_gain" in path for path in divergence.paths)

        entry = corpus_entry(divergence, found_by="unit test")
        assert entry["variants"] == ["serial", "process"]
        assert ScenarioSpec.from_dict(entry["spec"]).name == specs[0].name
        assert "mean_gain" in entry["reason"]


class TestCorpusReplay:
    def test_corpus_is_nonempty(self):
        assert len(CORPUS_FILES) >= 3

    @pytest.mark.parametrize(
        "path", CORPUS_FILES,
        ids=[os.path.basename(path) for path in CORPUS_FILES])
    def test_replay_entry(self, path):
        with open(path, "r", encoding="utf-8") as handle:
            entry = json.load(handle)
        report = replay_corpus_entry(entry)
        assert report.ok, [d.reason for d in report.divergences]

    def test_malformed_entry_rejected(self):
        with pytest.raises(ValueError, match="spec"):
            replay_corpus_entry({"variants": ["serial", "process"]})


class TestFuzzCli:
    def test_fuzz_smoke(self, capsys):
        from repro.cli import main

        assert main(["fuzz", "--specs", "2", "--seed", "4",
                     "--backends", "serial,process", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["checked"] == 2
        assert payload["variants"] == ["serial", "process"]

    def test_fuzz_replay_smoke(self, capsys):
        from repro.cli import main

        assert main(["fuzz", "--replay", CORPUS_FILES[0], "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["divergences"] == []

    def test_unknown_backend_exits(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["fuzz", "--specs", "1", "--backends", "serial,quantum"])

    def test_divergence_writes_corpus_and_fails(self, tmp_path,
                                                monkeypatch, capsys):
        from repro.cli import main

        real = differential._execute_variant

        def corrupted(spec, variant):
            result = real(spec, variant)
            if variant == "process":
                result["summaries"][0]["mean_gain"] += 1e-9
            return result

        monkeypatch.setattr(differential, "_execute_variant", corrupted)
        corpus = tmp_path / "corpus"
        with pytest.raises(SystemExit):
            main(["fuzz", "--specs", "1", "--seed", "9",
                  "--backends", "serial,process",
                  "--corpus-dir", str(corpus), "--json"])
        written = list(corpus.glob("*.json"))
        assert len(written) == 1
        entry = json.loads(written[0].read_text())
        assert entry["found_by"] == "repro fuzz --specs 1 --seed 9"
        # the written entry replays through the standard corpus path
        # (with the un-corrupted executor it reports no divergence)
        monkeypatch.setattr(differential, "_execute_variant", real)
        assert replay_corpus_entry(entry).ok
