"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.stirling import occupancy_distribution, stirling_second_kind
from repro.core.knowledge_free import KnowledgeFreeStrategy
from repro.core.omniscient import OmniscientStrategy
from repro.metrics.distributions import FrequencyDistribution
from repro.metrics.divergence import kl_divergence, total_variation
from repro.sketches.count_min import CountMinSketch, ExactFrequencyCounter
from repro.sketches.hashing import UniversalHashFamily
from repro.streams.oracle import StreamOracle
from repro.streams.stream import IdentifierStream, stream_from_frequencies

# Shared hypothesis profile: these tests exercise randomized data structures,
# so a moderate number of examples keeps the suite fast while still covering
# the input space well.
DEFAULT_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


identifier_lists = st.lists(st.integers(min_value=0, max_value=500),
                            min_size=1, max_size=300)


class TestHashingProperties:
    @DEFAULT_SETTINGS
    @given(items=st.lists(st.integers(min_value=0, max_value=2**40),
                          min_size=1, max_size=50),
           range_size=st.integers(min_value=2, max_value=1_000),
           seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_outputs_always_in_range(self, items, range_size, seed):
        function = UniversalHashFamily(range_size, random_state=seed).draw()
        for item in items:
            assert 0 <= function(item) < range_size


class TestCountMinProperties:
    @DEFAULT_SETTINGS
    @given(items=identifier_lists, seed=st.integers(0, 2**31 - 1))
    def test_never_underestimates(self, items, seed):
        sketch = CountMinSketch(width=16, depth=4, random_state=seed)
        exact = ExactFrequencyCounter()
        for item in items:
            sketch.update(item)
            exact.update(item)
        for item in set(items):
            assert sketch.estimate(item) >= exact.estimate(item)

    @DEFAULT_SETTINGS
    @given(items=identifier_lists, seed=st.integers(0, 2**31 - 1))
    def test_total_and_min_cell_invariants(self, items, seed):
        sketch = CountMinSketch(width=8, depth=3, random_state=seed)
        sketch.update_many(items)
        assert sketch.total == len(items)
        assert 0 < sketch.min_cell() <= len(items)

    @DEFAULT_SETTINGS
    @given(items=identifier_lists, seed=st.integers(0, 2**31 - 1))
    def test_estimate_bounded_by_stream_length(self, items, seed):
        sketch = CountMinSketch(width=8, depth=3, random_state=seed)
        sketch.update_many(items)
        for item in set(items):
            assert sketch.estimate(item) <= len(items)


class TestStirlingProperties:
    @DEFAULT_SETTINGS
    @given(n=st.integers(min_value=1, max_value=15))
    def test_row_recurrence(self, n):
        for k in range(1, n + 1):
            assert stirling_second_kind(n, k) == (
                stirling_second_kind(n - 1, k - 1)
                + k * stirling_second_kind(n - 1, k))

    @DEFAULT_SETTINGS
    @given(num_urns=st.integers(min_value=1, max_value=30),
           num_balls=st.integers(min_value=0, max_value=60))
    def test_occupancy_is_probability_distribution(self, num_urns, num_balls):
        distribution = occupancy_distribution(num_urns, num_balls)
        assert abs(distribution.sum() - 1.0) < 1e-9
        assert (distribution >= -1e-12).all()
        # N_l <= min(k, l) almost surely.
        limit = min(num_urns, num_balls)
        assert distribution[limit + 1:].sum() < 1e-12


class TestDivergenceProperties:
    probability_tables = st.dictionaries(
        keys=st.integers(min_value=0, max_value=20),
        values=st.floats(min_value=0.01, max_value=10.0,
                         allow_nan=False, allow_infinity=False),
        min_size=1, max_size=15,
    )

    @DEFAULT_SETTINGS
    @given(table=probability_tables)
    def test_self_divergence_is_zero(self, table):
        dist = FrequencyDistribution(table)
        assert abs(kl_divergence(dist, dist)) < 1e-9

    @DEFAULT_SETTINGS
    @given(first=probability_tables, second=probability_tables)
    def test_divergence_non_negative_on_common_support(self, first, second):
        support = sorted(set(first) | set(second))
        # Give both distributions full support to avoid the floor penalty.
        v = FrequencyDistribution({k: first.get(k, 0.01) for k in support})
        w = FrequencyDistribution({k: second.get(k, 0.01) for k in support})
        assert kl_divergence(v, w) >= -1e-9

    @DEFAULT_SETTINGS
    @given(first=probability_tables, second=probability_tables)
    def test_total_variation_bounds_and_symmetry(self, first, second):
        v = FrequencyDistribution(first)
        w = FrequencyDistribution(second)
        distance = total_variation(v, w)
        assert -1e-12 <= distance <= 1.0 + 1e-12
        assert abs(distance - total_variation(w, v)) < 1e-12


class TestStreamProperties:
    @DEFAULT_SETTINGS
    @given(frequencies=st.dictionaries(
        keys=st.integers(min_value=0, max_value=100),
        values=st.integers(min_value=0, max_value=50),
        min_size=1, max_size=30),
        seed=st.integers(0, 2**31 - 1))
    def test_stream_from_frequencies_round_trip(self, frequencies, seed):
        stream = stream_from_frequencies(frequencies, random_state=seed)
        realised = stream.frequencies()
        for identifier, count in frequencies.items():
            assert realised.get(identifier, 0) == count

    @DEFAULT_SETTINGS
    @given(identifiers=identifier_lists)
    def test_occurrence_probabilities_sum_to_one(self, identifiers):
        stream = IdentifierStream(identifiers=identifiers)
        probabilities = stream.occurrence_probabilities()
        assert abs(sum(probabilities.values()) - 1.0) < 1e-9


class TestSamplerInvariants:
    @DEFAULT_SETTINGS
    @given(identifiers=identifier_lists,
           memory_size=st.integers(min_value=1, max_value=20),
           seed=st.integers(0, 2**31 - 1))
    def test_knowledge_free_memory_invariants(self, identifiers, memory_size,
                                              seed):
        strategy = KnowledgeFreeStrategy(memory_size, sketch_width=8,
                                         sketch_depth=3, random_state=seed)
        seen = set()
        for identifier in identifiers:
            output = strategy.process(identifier)
            seen.add(identifier)
            # Invariants: bounded memory, no duplicates, memory and output
            # only ever contain identifiers actually read from the stream.
            assert len(strategy.memory) <= memory_size
            assert len(set(strategy.memory)) == len(strategy.memory)
            assert set(strategy.memory) <= seen
            assert output in seen

    @DEFAULT_SETTINGS
    @given(identifiers=identifier_lists,
           memory_size=st.integers(min_value=1, max_value=10),
           seed=st.integers(0, 2**31 - 1))
    def test_omniscient_memory_invariants(self, identifiers, memory_size, seed):
        stream = IdentifierStream(identifiers=identifiers)
        oracle = StreamOracle.from_stream(stream)
        strategy = OmniscientStrategy(oracle, memory_size, random_state=seed)
        seen = set()
        for identifier in identifiers:
            output = strategy.process(identifier)
            seen.add(identifier)
            assert len(strategy.memory) <= memory_size
            assert len(set(strategy.memory)) == len(strategy.memory)
            assert set(strategy.memory) <= seen
            assert output in seen

    @DEFAULT_SETTINGS
    @given(table=st.dictionaries(
        keys=st.integers(min_value=0, max_value=50),
        values=st.floats(min_value=0.01, max_value=5.0,
                         allow_nan=False, allow_infinity=False),
        min_size=2, max_size=20))
    def test_oracle_insertion_probabilities_in_unit_interval(self, table):
        oracle = StreamOracle(table)
        for identifier in table:
            probability = oracle.insertion_probability(identifier)
            assert 0.0 < probability <= 1.0 + 1e-12
