"""Tests for repro.streams.generators."""

import numpy as np
import pytest

from repro.streams.generators import (
    peak_attack_stream,
    peak_stream,
    poisson_arrival_stream,
    poisson_attack_stream,
    truncated_poisson_probabilities,
    truncated_poisson_stream,
    uniform_stream,
    zipf_probabilities,
    zipf_stream,
)


class TestUniformStream:
    def test_size_and_universe(self):
        stream = uniform_stream(1_000, 50, random_state=0)
        assert stream.size == 1_000
        assert stream.universe == list(range(50))

    def test_roughly_balanced(self):
        stream = uniform_stream(20_000, 20, random_state=1)
        frequencies = stream.frequencies()
        assert min(frequencies.values()) > 700
        assert max(frequencies.values()) < 1_300

    def test_explicit_identifiers(self):
        stream = uniform_stream(100, identifiers=[10, 20, 30], random_state=2)
        assert set(stream.identifiers) <= {10, 20, 30}

    def test_rejects_missing_population(self):
        with pytest.raises(ValueError):
            uniform_stream(100)

    def test_rejects_duplicate_identifiers(self):
        with pytest.raises(ValueError):
            uniform_stream(100, identifiers=[1, 1, 2])


class TestZipfStream:
    def test_probabilities_normalised_and_decreasing(self):
        probabilities = zipf_probabilities(100, alpha=1.5)
        assert probabilities.sum() == pytest.approx(1.0)
        assert np.all(np.diff(probabilities) <= 0)

    def test_high_alpha_concentrates_mass(self):
        stream = zipf_stream(10_000, 100, alpha=4.0, random_state=0)
        top_frequency = stream.frequencies().get(0, 0)
        assert top_frequency > 0.8 * stream.size

    def test_low_alpha_spreads_mass(self):
        stream = zipf_stream(10_000, 100, alpha=0.5, random_state=1)
        assert len(stream.frequencies()) > 80

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            zipf_stream(100, 10, alpha=0.0)


class TestTruncatedPoisson:
    def test_probabilities_peak_near_lambda(self):
        probabilities = truncated_poisson_probabilities(100, lam=50)
        assert probabilities.sum() == pytest.approx(1.0)
        assert 40 <= int(np.argmax(probabilities)) <= 60

    def test_stream_default_lambda(self):
        stream = truncated_poisson_stream(5_000, 100, random_state=0)
        frequencies = stream.frequencies()
        top = max(frequencies, key=frequencies.get)
        assert 35 <= top <= 65

    def test_invalid_lambda(self):
        with pytest.raises(ValueError):
            truncated_poisson_probabilities(10, lam=0)


class TestPeakStream:
    def test_exact_frequencies(self):
        stream = peak_stream(10, peak_frequency=500, base_frequency=5,
                             random_state=0)
        frequencies = stream.frequencies()
        assert frequencies[0] == 500
        assert all(frequencies[i] == 5 for i in range(1, 10))
        assert stream.malicious == [0]

    def test_custom_peak_identifier(self):
        stream = peak_stream(5, peak_frequency=50, base_frequency=1,
                             peak_identifier=3, random_state=0)
        assert stream.frequencies()[3] == 50

    def test_peak_must_be_in_universe(self):
        with pytest.raises(ValueError):
            peak_stream(5, peak_identifier=99)


class TestPeakAttackStream:
    def test_peak_fraction_respected(self):
        stream = peak_attack_stream(10_000, 100, peak_fraction=0.5,
                                    random_state=0)
        frequencies = stream.frequencies()
        assert frequencies[0] == 5_000
        assert len(frequencies) == 100
        assert abs(stream.size - 10_000) <= 100

    def test_every_identifier_present(self):
        stream = peak_attack_stream(2_000, 50, random_state=1)
        assert len(stream.frequencies()) == 50

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            peak_attack_stream(100, 10, peak_fraction=1.5)


class TestPoissonAttackStream:
    def test_overrepresentation_around_lambda(self):
        stream = poisson_attack_stream(50_000, 100, random_state=0)
        frequencies = stream.frequencies()
        center = max(frequencies, key=frequencies.get)
        assert 35 <= center <= 65
        assert len(frequencies) == 100

    def test_malicious_identifiers_marked(self):
        stream = poisson_attack_stream(50_000, 100, random_state=1)
        assert stream.malicious
        assert all(30 <= identifier <= 70 for identifier in stream.malicious)

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            poisson_attack_stream(100, 10, attack_fraction=0.0)


class TestPoissonArrivalStream:
    def test_burst_identifiers_overrepresented(self):
        stream = poisson_arrival_stream(20_000, 200, burst_identifiers=5,
                                        burst_weight=0.5, random_state=0)
        frequencies = stream.frequencies()
        burst_mass = sum(frequencies.get(i, 0) for i in range(5))
        assert burst_mass > 0.4 * stream.size
        assert stream.malicious == [0, 1, 2, 3, 4]

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            poisson_arrival_stream(100, 10, burst_identifiers=10)
        with pytest.raises(ValueError):
            poisson_arrival_stream(100, 10, burst_weight=1.5)
