"""Tests for repro.sketches.hashing (2-universal hash families)."""

import numpy as np
import pytest

from repro.sketches.hashing import (
    MERSENNE_PRIME_61,
    UniversalHashFamily,
    UniversalHashFunction,
    pairwise_collision_rate,
)


class TestUniversalHashFunction:
    def test_output_in_range(self):
        function = UniversalHashFunction(a=7, b=3, prime=101, range_size=10)
        for item in range(200):
            assert 0 <= function(item) < 10

    def test_deterministic(self):
        function = UniversalHashFunction(a=7, b=3, prime=101, range_size=10)
        assert function(42) == function(42)

    def test_hash_many_matches_scalar(self):
        function = UniversalHashFunction(a=123456789, b=987654321,
                                         prime=MERSENNE_PRIME_61,
                                         range_size=64)
        items = [1, 5, 10**12, 2**60, 999]
        vectorised = function.hash_many(items)
        assert list(vectorised) == [function(item) for item in items]

    def test_invalid_coefficients_rejected(self):
        with pytest.raises(ValueError):
            UniversalHashFunction(a=0, b=0, prime=101, range_size=10)
        with pytest.raises(ValueError):
            UniversalHashFunction(a=1, b=200, prime=101, range_size=10)

    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            UniversalHashFunction(a=1, b=0, prime=101, range_size=0)


class TestUniversalHashFamily:
    def test_draw_returns_valid_function(self):
        family = UniversalHashFamily(32, random_state=0)
        function = family.draw()
        assert isinstance(function, UniversalHashFunction)
        assert function.range_size == 32

    def test_draw_many_returns_distinct_functions(self):
        family = UniversalHashFamily(32, random_state=0)
        functions = family.draw_many(10)
        assert len(functions) == 10
        coefficients = {(f.a, f.b) for f in functions}
        assert len(coefficients) > 1

    def test_different_seeds_give_different_functions(self):
        first = UniversalHashFamily(64, random_state=1).draw()
        second = UniversalHashFamily(64, random_state=2).draw()
        assert (first.a, first.b) != (second.a, second.b)

    def test_prime_must_exceed_range(self):
        with pytest.raises(ValueError):
            UniversalHashFamily(100, prime=50)

    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            UniversalHashFamily(0)

    def test_collision_rate_near_universal_bound(self):
        # Average the empirical pairwise collision rate over many drawn
        # functions: 2-universality guarantees <= 1/range_size on average.
        range_size = 20
        family = UniversalHashFamily(range_size, random_state=3)
        items = list(range(40))
        rates = [pairwise_collision_rate(family.draw(), items)
                 for _ in range(30)]
        assert np.mean(rates) <= 1.5 / range_size

    def test_outputs_roughly_uniform(self):
        family = UniversalHashFamily(8, random_state=4)
        function = family.draw()
        values = function.hash_many(list(range(8_000)))
        counts = np.bincount(values, minlength=8)
        assert counts.min() > 0
        assert counts.max() / counts.min() < 2.0
