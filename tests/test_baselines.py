"""Tests for repro.core.baselines (min-wise, reservoir, full-memory samplers)."""

from collections import Counter

import numpy as np
import pytest

from repro.core.baselines import FullMemorySampler, MinWiseSampler, ReservoirSampler
from repro.engine import run_stream, run_stream_scalar
from repro.streams import peak_attack_stream, uniform_stream, zipf_stream


class TestMinWiseSampler:
    def test_memory_bounded(self):
        sampler = MinWiseSampler(memory_size=5, random_state=0)
        stream = uniform_stream(500, 50, random_state=0)
        for identifier in stream:
            sampler.process(identifier)
            assert len(sampler.memory) <= 5

    def test_converges_then_static(self):
        # Once every identifier has been seen, the slot winners never change:
        # the sample is static (the paper's criticism of min-wise sampling).
        sampler = MinWiseSampler(memory_size=4, random_state=1)
        universe = list(range(30))
        rng = np.random.default_rng(1)
        for _ in range(500):
            sampler.process(int(rng.integers(0, 30)))
        snapshot = sorted(sampler.memory)
        for _ in range(500):
            sampler.process(int(rng.integers(0, 30)))
        assert sorted(sampler.memory) == snapshot

    def test_winner_insensitive_to_frequency(self):
        # The slot winner depends only on the hash image, not on how often an
        # identifier recurs: repeated injections do not change the winner.
        sampler = MinWiseSampler(memory_size=1, random_state=2)
        for identifier in range(20):
            sampler.process(identifier)
        winner = sampler.memory[0]
        for _ in range(1_000):
            sampler.process(5 if winner != 5 else 7)
        assert sampler.memory[0] == winner

    def test_reset(self):
        sampler = MinWiseSampler(memory_size=3, random_state=3)
        sampler.process(1)
        sampler.reset()
        assert sampler.memory == []
        sampler.process(2)
        assert 2 in sampler.memory


class TestReservoirSampler:
    def test_uniform_over_stream_positions(self):
        # Over many runs, each stream element is kept with probability c/m.
        kept = Counter()
        runs = 300
        for seed in range(runs):
            sampler = ReservoirSampler(memory_size=5, random_state=seed)
            for identifier in range(50):
                sampler.process(identifier)
            kept.update(set(sampler.memory))
        expected = 5 / 50
        for identifier in range(50):
            assert abs(kept[identifier] / runs - expected) < 0.08

    def test_biased_stream_biases_reservoir(self):
        # The illustrative weakness: an over-represented identifier dominates
        # the reservoir sample.
        stream = peak_attack_stream(10_000, 100, peak_fraction=0.5,
                                    random_state=4)
        hits = 0
        runs = 50
        for seed in range(runs):
            sampler = ReservoirSampler(memory_size=10, random_state=seed)
            for identifier in stream:
                sampler.process(identifier)
            hits += sum(1 for identifier in sampler.memory if identifier == 0)
        # Peak identifier holds ~50% of the reservoir slots on average.
        assert hits / (runs * 10) > 0.3

    def test_memory_bounded(self):
        sampler = ReservoirSampler(memory_size=3, random_state=5)
        for identifier in range(100):
            sampler.process(identifier)
            assert len(sampler.memory) <= 3


class TestVectorisedBatchPaths:
    """The min-wise / reservoir chunk processors are bit-identical to scalar.

    The generic scalar-equals-batch regression lives in test_engine_batch;
    these tests additionally pin the *internal* state (memory content, slot
    bookkeeping) and the chunk-size invariance of the dedicated fast paths.
    """

    STREAM = zipf_stream(6_000, 800, alpha=1.3, random_state=21)

    @pytest.mark.parametrize("factory", [
        lambda: MinWiseSampler(12, random_state=5),
        lambda: ReservoirSampler(12, random_state=5),
    ], ids=["minwise", "reservoir"])
    def test_state_matches_scalar_path(self, factory):
        scalar = factory()
        batch = factory()
        scalar_result = run_stream_scalar(scalar, self.STREAM)
        batch_result = run_stream(batch, self.STREAM, batch_size=512)
        assert np.array_equal(scalar_result.outputs, batch_result.outputs)
        assert scalar.memory == batch.memory
        assert scalar._memory_set == batch._memory_set
        assert scalar.elements_processed == batch.elements_processed

    def test_minwise_slot_bookkeeping_matches_scalar(self):
        scalar = MinWiseSampler(8, random_state=3)
        batch = MinWiseSampler(8, random_state=3)
        run_stream_scalar(scalar, self.STREAM)
        run_stream(batch, self.STREAM, batch_size=333)
        assert scalar._best_values == batch._best_values
        assert scalar._best_identifiers == batch._best_identifiers
        assert scalar._slot_positions == batch._slot_positions
        assert scalar._member_counts == batch._member_counts

    @pytest.mark.parametrize("factory", [
        lambda: MinWiseSampler(10, random_state=7),
        lambda: ReservoirSampler(10, random_state=7),
    ], ids=["minwise", "reservoir"])
    def test_chunk_size_invariance(self, factory):
        reference = run_stream(factory(), self.STREAM, batch_size=2048)
        for batch_size in (1, 7, 97, 1000):
            result = run_stream(factory(), self.STREAM, batch_size=batch_size)
            assert np.array_equal(reference.outputs, result.outputs), batch_size

    def test_subclasses_fall_back_to_generic_loop(self):
        class TweakedReservoir(ReservoirSampler):
            def _admit(self, identifier):
                super()._admit(identifier)

        scalar = run_stream_scalar(TweakedReservoir(6, random_state=2),
                                   self.STREAM.identifiers[:2000])
        batch = run_stream(TweakedReservoir(6, random_state=2),
                           self.STREAM.identifiers[:2000], batch_size=128)
        assert np.array_equal(scalar.outputs, batch.outputs)

    def test_empty_chunk(self):
        assert MinWiseSampler(4, random_state=0).process_batch([]).size == 0
        assert ReservoirSampler(4, random_state=0).process_batch([]).size == 0


class TestFullMemorySampler:
    def test_stores_every_distinct_identifier(self):
        sampler = FullMemorySampler(random_state=6)
        stream = uniform_stream(2_000, 100, random_state=6)
        sampler.process_stream(stream)
        assert sampler.distinct_seen() == len(set(stream.identifiers))

    def test_memory_never_full(self):
        sampler = FullMemorySampler(random_state=7)
        for identifier in range(1_000):
            sampler.process(identifier)
        assert not sampler.memory_is_full
        assert sampler.distinct_seen() == 1_000

    def test_sample_uniform_over_distinct(self):
        sampler = FullMemorySampler(random_state=8)
        stream = peak_attack_stream(5_000, 50, peak_fraction=0.5,
                                    random_state=8)
        sampler.process_stream(stream)
        samples = Counter(sampler.sample() for _ in range(5_000))
        assert max(samples.values()) < 0.1 * 5_000
