"""Tests for repro.experiments.harness."""

import pytest

from repro.experiments.harness import (
    ExperimentHarness,
    ExperimentResult,
    TrialResult,
    default_strategy_factories,
    sweep,
)
from repro.streams import peak_attack_stream


def _peak_stream_factory(rng):
    return peak_attack_stream(3_000, 60, peak_fraction=0.5, random_state=rng)


class TestDefaultStrategyFactories:
    def test_contains_both_paper_strategies(self):
        factories = default_strategy_factories(10, 10, 5)
        assert set(factories) == {"knowledge-free", "omniscient"}

    def test_factories_build_working_strategies(self, rng):
        stream = _peak_stream_factory(rng)
        factories = default_strategy_factories(5, 8, 3)
        for factory in factories.values():
            strategy = factory(stream, rng)
            output = strategy.process_stream(stream)
            assert output.size == stream.size


class TestExperimentHarness:
    def test_runs_requested_trials(self):
        harness = ExperimentHarness(
            _peak_stream_factory,
            default_strategy_factories(5, 8, 3),
            trials=3,
            random_state=0,
        )
        result = harness.run()
        assert len(result.trials) == 3 * 2
        assert len(result.for_strategy("omniscient")) == 3

    def test_summaries(self):
        harness = ExperimentHarness(
            _peak_stream_factory,
            default_strategy_factories(5, 8, 3),
            trials=2,
            random_state=1,
        )
        result = harness.run()
        summaries = result.summaries()
        assert set(summaries) == {"knowledge-free", "omniscient"}
        for summary in summaries.values():
            assert summary.trials == 2
            assert summary.mean_input_divergence > 0

    def test_omniscient_beats_or_matches_knowledge_free(self):
        harness = ExperimentHarness(
            _peak_stream_factory,
            default_strategy_factories(8, 10, 5),
            trials=3,
            random_state=2,
        )
        result = harness.run()
        assert result.mean_gain("omniscient") >= result.mean_gain(
            "knowledge-free") - 0.05

    def test_mean_gain_unknown_strategy(self):
        result = ExperimentResult(trials=[TrialResult(
            strategy="x", trial=0, input_divergence=1, output_divergence=0.5,
            gain=0.5, input_max_frequency=10, output_max_frequency=5,
            stream_size=100)])
        assert result.mean_gain("x") == pytest.approx(0.5)
        with pytest.raises(KeyError):
            result.mean_gain("unknown")

    def test_deterministic_given_seed(self):
        def build():
            return ExperimentHarness(
                _peak_stream_factory,
                default_strategy_factories(5, 8, 3),
                trials=2,
                random_state=42,
            ).run()

        first, second = build(), build()
        assert [t.gain for t in first.trials] == [t.gain for t in second.trials]

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentHarness(_peak_stream_factory, {}, trials=1)
        with pytest.raises(ValueError):
            ExperimentHarness(_peak_stream_factory,
                              default_strategy_factories(5, 8, 3), trials=0)


class TestSweep:
    def test_sweep_runs_all_values(self):
        def harness_for(memory_size):
            return ExperimentHarness(
                _peak_stream_factory,
                default_strategy_factories(memory_size, 8, 3),
                trials=1,
                random_state=3,
            )

        results = sweep([2, 8], harness_for)
        assert set(results) == {2, 8}
        for result in results.values():
            assert result.trials

    def test_larger_memory_gives_higher_gain(self):
        def harness_for(memory_size):
            return ExperimentHarness(
                _peak_stream_factory,
                {"knowledge-free": default_strategy_factories(
                    memory_size, 10, 5)["knowledge-free"]},
                trials=2,
                random_state=4,
            )

        results = sweep([3, 30], harness_for)
        assert results[30].mean_gain("knowledge-free") >= \
            results[3].mean_gain("knowledge-free") - 0.05
