"""Tests for repro.sketches.entropy."""

import math

import numpy as np
import pytest

from repro.sketches.entropy import (
    SampledEntropyEstimator,
    StreamingEntropy,
    shannon_entropy,
)


class TestShannonEntropy:
    def test_uniform_distribution(self):
        frequencies = {i: 10 for i in range(8)}
        assert shannon_entropy(frequencies) == pytest.approx(math.log(8))

    def test_degenerate_distribution(self):
        assert shannon_entropy({1: 100}) == pytest.approx(0.0)

    def test_empty(self):
        assert shannon_entropy({}) == 0.0

    def test_base_conversion(self):
        frequencies = {i: 1 for i in range(4)}
        assert shannon_entropy(frequencies, base=2) == pytest.approx(2.0)

    def test_zero_counts_ignored(self):
        assert shannon_entropy({1: 5, 2: 0}) == pytest.approx(0.0)


class TestStreamingEntropy:
    def test_matches_batch_entropy(self):
        rng = np.random.default_rng(0)
        items = rng.integers(0, 30, size=3_000)
        streaming = StreamingEntropy()
        frequencies = {}
        for item in items:
            item = int(item)
            streaming.update(item)
            frequencies[item] = frequencies.get(item, 0) + 1
        assert streaming.entropy() == pytest.approx(
            shannon_entropy(frequencies), abs=1e-9)

    def test_empty_entropy_zero(self):
        assert StreamingEntropy().entropy() == 0.0

    def test_single_item_entropy_zero(self):
        streaming = StreamingEntropy()
        streaming.update_many([7, 7, 7])
        assert streaming.entropy() == pytest.approx(0.0, abs=1e-12)

    def test_counts(self):
        streaming = StreamingEntropy()
        streaming.update_many([1, 2, 2])
        assert streaming.total == 3
        assert streaming.distinct == 2


class TestSampledEntropyEstimator:
    def test_estimate_close_to_truth_on_uniform_stream(self):
        rng = np.random.default_rng(1)
        items = rng.integers(0, 50, size=5_000)
        exact = StreamingEntropy()
        estimator = SampledEntropyEstimator(num_estimators=200, random_state=1)
        for item in items:
            exact.update(int(item))
            estimator.update(int(item))
        assert abs(estimator.estimate() - exact.entropy()) < 0.8

    def test_empty_estimate_zero(self):
        assert SampledEntropyEstimator(random_state=0).estimate() == 0.0

    def test_rejects_invalid_size(self):
        with pytest.raises(ValueError):
            SampledEntropyEstimator(num_estimators=0)
