"""Tests for repro.bench (benchmark records and the regression gate)."""

import json

import pytest

from repro.bench import bench_json_dir, summarise_snapshot, write_bench_json
from repro.bench.compare import compare_records, load_record, main
from repro.telemetry import MetricsRegistry

BASELINE = {
    "name": "engine",
    "tiers": {
        "sharded": {"elements_per_second": 500_000, "seconds": 0.4},
        "socket": {"elements_per_second": 300_000},
    },
}


def _current(sharded=500_000, socket=300_000):
    return {
        "name": "engine",
        "tiers": {
            "sharded": {"elements_per_second": sharded},
            "socket": {"elements_per_second": socket},
        },
    }


class TestCompareRecords:
    def test_identical_records_pass(self):
        assert compare_records(_current(), BASELINE) == []

    def test_improvement_and_small_drop_pass(self):
        current = _current(sharded=900_000, socket=250_000)
        assert compare_records(current, BASELINE, tolerance=0.30) == []

    def test_large_regression_fails(self):
        current = _current(sharded=100_000)
        failures = compare_records(current, BASELINE, tolerance=0.30)
        assert len(failures) == 1
        assert "sharded" in failures[0]
        assert "regressed 80%" in failures[0]

    def test_exact_floor_passes(self):
        # the floor itself (baseline * (1 - tolerance)) is not a failure
        current = _current(sharded=350_000)
        assert compare_records(current, BASELINE, tolerance=0.30) == []

    def test_missing_tier_fails_unless_allowed(self):
        current = {"name": "engine",
                   "tiers": {"sharded": {"elements_per_second": 500_000}}}
        failures = compare_records(current, BASELINE)
        assert len(failures) == 1
        assert "missing" in failures[0]
        assert compare_records(current, BASELINE, allow_missing=True) == []

    def test_missing_metric_fails_unless_allowed(self):
        current = _current()
        del current["tiers"]["socket"]["elements_per_second"]
        current["tiers"]["socket"]["note"] = "oops"
        failures = compare_records(current, BASELINE)
        assert len(failures) == 1
        assert "elements_per_second" in failures[0]
        assert compare_records(current, BASELINE, allow_missing=True) == []

    def test_non_throughput_metrics_are_not_gated(self):
        # 'seconds' in the baseline tier is context, not a gated metric
        current = _current()
        current["tiers"]["sharded"]["seconds"] = 1e9
        assert compare_records(current, BASELINE) == []

    def test_tolerance_validation(self):
        with pytest.raises(ValueError):
            compare_records(_current(), BASELINE, tolerance=1.0)
        with pytest.raises(ValueError):
            compare_records(_current(), BASELINE, tolerance=-0.1)


class TestRecordRoundTrip:
    def test_write_and_load(self, tmp_path):
        path = tmp_path / "out" / "BENCH_engine.json"
        written = write_bench_json(
            str(path), "engine",
            {"sharded": {"elements_per_second": 123}},
            telemetry={"counters": {"engine.elements": 1}},
            config={"stream_size": 1000})
        assert written == str(path)
        record = load_record(str(path))
        assert record["name"] == "engine"
        assert record["tiers"]["sharded"]["elements_per_second"] == 123
        assert record["telemetry"]["counters"]["engine.elements"] == 1
        assert record["config"]["stream_size"] == 1000
        # the round trip gates clean against itself
        assert compare_records(record, record) == []

    def test_load_rejects_non_records(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"no": "tiers"}))
        with pytest.raises(ValueError, match="tiers"):
            load_record(str(path))

    def test_bench_json_dir_reads_environment(self, monkeypatch):
        monkeypatch.delenv("BENCH_JSON_DIR", raising=False)
        assert bench_json_dir() is None
        monkeypatch.setenv("BENCH_JSON_DIR", "  ")
        assert bench_json_dir() is None
        monkeypatch.setenv("BENCH_JSON_DIR", "bench-out")
        assert bench_json_dir() == "bench-out"


class TestSummariseSnapshot:
    def test_histograms_condense_to_aggregates(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(7)
        registry.gauge("g").set("socket")
        histogram = registry.histogram("h", (1.0, 2.0))
        histogram.observe(0.5)
        histogram.observe(3.0)
        summary = summarise_snapshot(registry.snapshot())
        assert summary["counters"] == {"c": 7}
        assert summary["gauges"] == {"g": "socket"}
        assert summary["histograms"]["h"] == {
            "count": 2, "mean": 1.75, "max": 3.0}
        assert "counts" not in summary["histograms"]["h"]


class TestCompareCli:
    def test_ok_run_exits_zero(self, tmp_path, capsys):
        current = tmp_path / "current.json"
        baseline = tmp_path / "baseline.json"
        write_bench_json(str(current), "engine", _current()["tiers"])
        write_bench_json(str(baseline), "engine", BASELINE["tiers"])
        assert main([str(current), str(baseline)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_regression_exits_one(self, tmp_path, capsys):
        current = tmp_path / "current.json"
        baseline = tmp_path / "baseline.json"
        write_bench_json(str(current), "engine",
                         _current(socket=10_000)["tiers"])
        write_bench_json(str(baseline), "engine", BASELINE["tiers"])
        assert main([str(current), str(baseline)]) == 1
        out = capsys.readouterr().out
        assert "regression" in out
        assert "FAIL" in out

    def test_unreadable_record_exits_two(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        write_bench_json(str(baseline), "engine", BASELINE["tiers"])
        assert main([str(tmp_path / "missing.json"), str(baseline)]) == 2
        assert "bench-compare" in capsys.readouterr().err

    def test_allow_missing_flag(self, tmp_path):
        current = tmp_path / "current.json"
        baseline = tmp_path / "baseline.json"
        write_bench_json(str(current), "engine",
                         {"sharded": {"elements_per_second": 500_000}})
        write_bench_json(str(baseline), "engine", BASELINE["tiers"])
        assert main([str(current), str(baseline)]) == 1
        assert main([str(current), str(baseline), "--allow-missing"]) == 0
