"""Tests for repro.core.omniscient (Algorithm 1)."""

from collections import Counter

import numpy as np
import pytest

from repro.core.omniscient import EmpiricalOmniscientStrategy, OmniscientStrategy
from repro.metrics import kl_gain
from repro.streams import StreamOracle, peak_attack_stream, uniform_stream


class TestOmniscientStrategy:
    def test_memory_fills_with_first_distinct_ids(self):
        oracle = StreamOracle.uniform(10)
        strategy = OmniscientStrategy(oracle, memory_size=3, random_state=0)
        for identifier in [0, 1, 2]:
            strategy.process(identifier)
        assert sorted(strategy.memory) == [0, 1, 2]

    def test_insertion_probability_matches_corollary5(self):
        oracle = StreamOracle({0: 0.5, 1: 0.25, 2: 0.25})
        strategy = OmniscientStrategy(oracle, memory_size=2, random_state=0)
        assert strategy.insertion_probability(0) == pytest.approx(0.5)
        assert strategy.insertion_probability(1) == pytest.approx(1.0)

    def test_output_length_matches_input(self):
        stream = uniform_stream(500, 20, random_state=1)
        strategy = EmpiricalOmniscientStrategy(stream, memory_size=5,
                                               random_state=1)
        output = strategy.process_stream(stream)
        assert output.size == stream.size

    def test_memory_never_exceeds_capacity(self):
        stream = uniform_stream(1_000, 50, random_state=2)
        strategy = EmpiricalOmniscientStrategy(stream, memory_size=7,
                                               random_state=2)
        for identifier in stream:
            strategy.process(identifier)
            assert len(strategy.memory) <= 7

    def test_memory_holds_distinct_identifiers(self):
        stream = uniform_stream(1_000, 30, random_state=3)
        strategy = EmpiricalOmniscientStrategy(stream, memory_size=5,
                                               random_state=3)
        for identifier in stream:
            strategy.process(identifier)
            assert len(set(strategy.memory)) == len(strategy.memory)

    def test_unbias_peak_attack(self):
        # The headline property: the omniscient strategy removes nearly all
        # of the peak-attack bias.
        stream = peak_attack_stream(30_000, 300, peak_fraction=0.5,
                                    random_state=4)
        strategy = EmpiricalOmniscientStrategy(stream, memory_size=10,
                                               random_state=4)
        output = strategy.process_stream(stream)
        assert kl_gain(stream, output) > 0.9

    def test_freshness_rare_identifier_still_output(self):
        # An identifier occurring a handful of times must still reach the
        # output stream (Freshness).
        frequencies = {identifier: 200 for identifier in range(20)}
        frequencies[99] = 5
        from repro.streams import stream_from_frequencies
        stream = stream_from_frequencies(frequencies, random_state=5)
        strategy = EmpiricalOmniscientStrategy(stream, memory_size=5,
                                               random_state=5)
        output = strategy.process_stream(stream)
        assert 99 in set(output.identifiers)

    def test_output_roughly_uniform_on_biased_stream(self):
        stream = peak_attack_stream(40_000, 100, peak_fraction=0.5,
                                    random_state=6)
        strategy = EmpiricalOmniscientStrategy(stream, memory_size=10,
                                               random_state=6)
        output = strategy.process_stream(stream)
        counts = Counter(output.identifiers)
        # Discard the warm-up third of the output.
        steady = Counter(output.identifiers[output.size // 3:])
        peak_share = steady.get(0, 0) / sum(steady.values())
        assert peak_share < 0.05

    def test_custom_removal_weights(self):
        oracle = StreamOracle.uniform(10)
        strategy = OmniscientStrategy(oracle, memory_size=3,
                                      removal_weights={i: 1.0 for i in range(10)},
                                      random_state=0)
        stream = uniform_stream(500, 10, random_state=0)
        output = strategy.process_stream(stream)
        assert output.size == 500

    def test_rejects_non_positive_removal_weights(self):
        oracle = StreamOracle.uniform(5)
        with pytest.raises(ValueError):
            OmniscientStrategy(oracle, memory_size=2,
                               removal_weights={0: 0.0})

    def test_sample_none_before_any_input(self):
        oracle = StreamOracle.uniform(5)
        strategy = OmniscientStrategy(oracle, memory_size=2, random_state=0)
        assert strategy.sample() is None

    def test_reset(self):
        oracle = StreamOracle.uniform(5)
        strategy = OmniscientStrategy(oracle, memory_size=2, random_state=0)
        strategy.process(1)
        strategy.reset()
        assert strategy.memory == []
        assert strategy.elements_processed == 0

    def test_unknown_identifier_treated_as_rare(self):
        oracle = StreamOracle.uniform(5)
        strategy = OmniscientStrategy(oracle, memory_size=2, random_state=0)
        assert strategy.insertion_probability(999) == 1.0
