"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import ensure_rng, spawn_children


class TestEnsureRng:
    def test_none_returns_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        first = ensure_rng(42).integers(0, 1_000_000, size=5)
        second = ensure_rng(42).integers(0, 1_000_000, size=5)
        assert np.array_equal(first, second)

    def test_different_seeds_differ(self):
        first = ensure_rng(1).integers(0, 1_000_000, size=10)
        second = ensure_rng(2).integers(0, 1_000_000, size=10)
        assert not np.array_equal(first, second)

    def test_generator_passthrough(self):
        generator = np.random.default_rng(7)
        assert ensure_rng(generator) is generator

    def test_numpy_integer_seed(self):
        assert isinstance(ensure_rng(np.int64(3)), np.random.Generator)

    def test_invalid_type_raises(self):
        with pytest.raises(TypeError):
            ensure_rng("not-a-seed")


class TestSpawnChildren:
    def test_count_is_respected(self):
        children = spawn_children(0, 5)
        assert len(children) == 5

    def test_children_are_independent_generators(self):
        children = spawn_children(0, 3)
        draws = [child.integers(0, 2**31, size=8) for child in children]
        assert not np.array_equal(draws[0], draws[1])
        assert not np.array_equal(draws[1], draws[2])

    def test_deterministic_given_seed(self):
        first = [c.integers(0, 1000, size=4) for c in spawn_children(9, 2)]
        second = [c.integers(0, 1000, size=4) for c in spawn_children(9, 2)]
        for a, b in zip(first, second):
            assert np.array_equal(a, b)

    def test_non_positive_count_raises(self):
        with pytest.raises(ValueError):
            spawn_children(0, 0)
