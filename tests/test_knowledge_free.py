"""Tests for repro.core.knowledge_free (Algorithm 3)."""

from collections import Counter

import pytest

from repro.core.knowledge_free import KnowledgeFreeStrategy
from repro.metrics import kl_gain
from repro.sketches import CountMinSketch, ExactFrequencyCounter, SpaceSavingSummary
from repro.streams import peak_attack_stream, uniform_stream


class TestKnowledgeFreeStrategy:
    def test_default_oracle_is_count_min(self):
        strategy = KnowledgeFreeStrategy(5, sketch_width=8, sketch_depth=3,
                                         random_state=0)
        assert isinstance(strategy.sketch, CountMinSketch)
        assert strategy.sketch.width == 8
        assert strategy.sketch.depth == 3

    def test_custom_frequency_oracle(self):
        oracle = ExactFrequencyCounter()
        strategy = KnowledgeFreeStrategy(5, frequency_oracle=oracle,
                                         random_state=0)
        strategy.process(1)
        assert oracle.total == 1

    def test_space_saving_oracle_accepted(self):
        oracle = SpaceSavingSummary(capacity=32)
        strategy = KnowledgeFreeStrategy(5, frequency_oracle=oracle,
                                         random_state=0)
        stream = uniform_stream(500, 20, random_state=0)
        output = strategy.process_stream(stream)
        assert output.size == 500

    def test_output_length_matches_input(self, small_peak_stream):
        strategy = KnowledgeFreeStrategy(10, sketch_width=10, sketch_depth=5,
                                         random_state=1)
        output = strategy.process_stream(small_peak_stream)
        assert output.size == small_peak_stream.size

    def test_memory_bounded_and_distinct(self, small_zipf_stream):
        strategy = KnowledgeFreeStrategy(8, sketch_width=10, sketch_depth=5,
                                         random_state=2)
        for identifier in small_zipf_stream:
            strategy.process(identifier)
            assert len(strategy.memory) <= 8
            assert len(set(strategy.memory)) == len(strategy.memory)

    def test_insertion_probability_in_unit_interval(self, small_peak_stream):
        strategy = KnowledgeFreeStrategy(10, sketch_width=10, sketch_depth=5,
                                         random_state=3)
        for identifier in small_peak_stream:
            strategy.process(identifier)
        for identifier in small_peak_stream.universe[:20]:
            probability = strategy.insertion_probability(identifier)
            assert 0.0 <= probability <= 1.0

    def test_frequent_identifier_gets_low_insertion_probability(self):
        stream = peak_attack_stream(20_000, 200, peak_fraction=0.5,
                                    random_state=4)
        strategy = KnowledgeFreeStrategy(10, sketch_width=20, sketch_depth=5,
                                         random_state=4)
        for identifier in stream:
            strategy.process(identifier)
        peak_probability = strategy.insertion_probability(0)
        rare_probability = strategy.insertion_probability(150)
        assert peak_probability < rare_probability

    def test_reduces_peak_attack_bias(self):
        stream = peak_attack_stream(30_000, 300, peak_fraction=0.5,
                                    random_state=5)
        strategy = KnowledgeFreeStrategy(10, sketch_width=10, sketch_depth=5,
                                         random_state=5)
        output = strategy.process_stream(stream)
        assert kl_gain(stream, output) > 0.5

    def test_peak_frequency_reduced_substantially(self):
        stream = peak_attack_stream(30_000, 300, peak_fraction=0.5,
                                    random_state=6)
        strategy = KnowledgeFreeStrategy(10, sketch_width=10, sketch_depth=5,
                                         random_state=6)
        output = strategy.process_stream(stream)
        input_peak = stream.frequencies()[0]
        output_peak = Counter(output.identifiers).get(0, 0)
        # The paper reports a ~50x reduction; require at least 5x here.
        assert output_peak < input_peak / 5

    def test_estimated_frequency_exposed(self):
        strategy = KnowledgeFreeStrategy(4, sketch_width=16, sketch_depth=4,
                                         random_state=7)
        for _ in range(10):
            strategy.process(3)
        assert strategy.estimated_frequency(3) >= 10

    def test_uniform_stream_stays_uniform(self, small_uniform_stream):
        strategy = KnowledgeFreeStrategy(10, sketch_width=10, sketch_depth=5,
                                         random_state=8)
        output = strategy.process_stream(small_uniform_stream)
        counts = Counter(output.identifiers)
        assert max(counts.values()) < 0.2 * output.size

    def test_sample_before_input_is_none(self):
        strategy = KnowledgeFreeStrategy(4, random_state=0)
        assert strategy.sample() is None

    def test_rejects_invalid_memory_size(self):
        with pytest.raises(ValueError):
            KnowledgeFreeStrategy(0)
